//! Deterministic fault injection for the simulated CMMD fabric.
//!
//! A [`FaultPlan`] pairs a `u64` seed with a [`FaultProfile`] describing
//! per-edge drop/duplication/corruption probabilities, bounded delivery
//! delay, and per-node slowdown/stall. Every fault decision is a pure
//! function of `(seed, stream, src, dst, seq, attempt)` hashed through
//! splitmix64 — **never** of host scheduling — so a chaos run is exactly
//! reproducible: the same seed yields the same faults, the same retries,
//! the same virtual-time charges, and (for survivable schedules) the same
//! labels as the fault-free run.
//!
//! Faults apply to the point-to-point data network only. The control
//! network (barriers, reductions, concatenation) is modelled as reliable,
//! as on the real CM-5; per-node stall and slowdown still perturb the
//! virtual clocks feeding collectives.
//!
//! When a plan is attached, point-to-point payloads travel in framed form:
//! a 12-byte header (`seq` as two little-endian `u32` words, then a CRC-32
//! of the payload) ahead of the payload bytes. The receiver discards
//! corrupt frames (CRC mismatch) and duplicates (sequence number below the
//! next expected), so the reliable-delivery layer in
//! [`crate::runtime::Node`] presents the exact fault-free byte stream to
//! the node program — or reports [`Fault::LinkDead`] once
//! [`RetryPolicy::max_retries`] is exhausted.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Framed-transport header length in bytes (`seq_lo`, `seq_hi`, `crc`).
pub const FRAME_HEADER_LEN: usize = 12;

/// Hash-stream constants: one per fault decision so the decisions are
/// independent draws.
const S_DROP: u64 = 0x00D1;
const S_CORRUPT: u64 = 0x00C2;
const S_DUP: u64 = 0x00D2;
const S_DELAY: u64 = 0x00DE;
const S_STALL: u64 = 0x005A;
const S_SLOW: u64 = 0x0051;

/// Bounded-retry policy for the reliable transport layered over a faulty
/// fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retransmissions attempted after the first send before the link is
    /// declared dead.
    pub max_retries: u32,
    /// Virtual-time cost of detecting a lost or corrupted frame (the ack
    /// timeout), nanoseconds.
    pub timeout_ns: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 8,
            timeout_ns: 250_000.0,
        }
    }
}

/// The kinds of fault and recovery events a chaos run can record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A frame was dropped in flight (never delivered).
    Drop,
    /// A frame was delivered twice.
    Duplicate,
    /// A frame was delivered with a corrupted payload.
    Corrupt,
    /// A frame's delivery was delayed in virtual time.
    Delay,
    /// A node stalled (virtual-time pause) before a communication call.
    Stall,
    /// The sender timed out and retransmitted.
    Retry,
    /// Retries were exhausted; the link (and its destination) is declared
    /// dead.
    LinkDead,
    /// A peer died mid-protocol (its channel disconnected).
    PeerDown,
    /// The run abandoned the message-passing engine and fell back to the
    /// host pipeline.
    Degraded,
}

impl FaultKind {
    /// Stable lower-case label used in telemetry and journals.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "dup",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Delay => "delay",
            FaultKind::Stall => "stall",
            FaultKind::Retry => "retry",
            FaultKind::LinkDead => "link_dead",
            FaultKind::PeerDown => "peer_down",
            FaultKind::Degraded => "degraded",
        }
    }
}

/// One injected fault or recovery action, recorded on the side that
/// *decided* it (the sender for link faults) so event streams stay
/// deterministic under host-thread scheduling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// What happened.
    pub kind: FaultKind,
    /// Source rank of the affected link (or the stalled/dead node).
    pub src: u32,
    /// Destination rank of the affected link (== `src` for node faults).
    pub dst: u32,
    /// Transport sequence number on the link (0 for node faults).
    pub seq: u64,
    /// Virtual time of the event on the recording node, nanoseconds.
    pub ts_ns: f64,
}

/// Aggregate fault counters for one node (or, folded, one run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Frames dropped in flight.
    pub drops: u64,
    /// Frames delivered twice.
    pub duplicates: u64,
    /// Frames delivered corrupted.
    pub corruptions: u64,
    /// Frames delivered late.
    pub delays: u64,
    /// Node stalls.
    pub stalls: u64,
    /// Retransmissions.
    pub retries: u64,
    /// Links declared dead.
    pub links_dead: u64,
}

impl FaultCounters {
    /// Folds another node's counters into this one.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.drops += other.drops;
        self.duplicates += other.duplicates;
        self.corruptions += other.corruptions;
        self.delays += other.delays;
        self.stalls += other.stalls;
        self.retries += other.retries;
        self.links_dead += other.links_dead;
    }

    /// Total injected faults (excluding recovery events).
    pub fn total_faults(&self) -> u64 {
        self.drops + self.duplicates + self.corruptions + self.delays + self.stalls
    }
}

/// Fault intensity knobs. All probabilities are per frame attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Probability a frame is dropped in flight.
    pub drop_p: f64,
    /// Probability a frame is duplicated.
    pub dup_p: f64,
    /// Probability a frame's payload is corrupted.
    pub corrupt_p: f64,
    /// Upper bound on extra delivery delay, virtual nanoseconds.
    pub max_delay_ns: f64,
    /// Probability a node stalls before a communication call.
    pub stall_p: f64,
    /// Stall duration, virtual nanoseconds.
    pub stall_ns: f64,
    /// Upper bound on a node's compute slowdown factor (1.0 = none).
    pub max_slowdown: f64,
}

/// Names of the built-in profiles, in the order used by CI's chaos matrix.
pub const PROFILE_NAMES: &[&str] = &[
    "none",
    "drop",
    "dup",
    "corrupt",
    "delay",
    "slow",
    "storm",
    "blackhole",
];

impl FaultProfile {
    /// No faults at all (framing still active — useful for transport
    /// tests).
    pub fn none() -> Self {
        Self {
            drop_p: 0.0,
            dup_p: 0.0,
            corrupt_p: 0.0,
            max_delay_ns: 0.0,
            stall_p: 0.0,
            stall_ns: 0.0,
            max_slowdown: 1.0,
        }
    }

    /// Frames are dropped with 5% probability.
    pub fn drop() -> Self {
        Self {
            drop_p: 0.05,
            ..Self::none()
        }
    }

    /// Frames are duplicated with 8% probability.
    pub fn dup() -> Self {
        Self {
            dup_p: 0.08,
            ..Self::none()
        }
    }

    /// Frame payloads are corrupted with 5% probability.
    pub fn corrupt() -> Self {
        Self {
            corrupt_p: 0.05,
            ..Self::none()
        }
    }

    /// Frames arrive up to 2 virtual milliseconds late.
    pub fn delay() -> Self {
        Self {
            max_delay_ns: 2_000_000.0,
            ..Self::none()
        }
    }

    /// Nodes compute up to 4× slower and stall for 0.5 virtual
    /// milliseconds with 2% probability per communication call.
    pub fn slow() -> Self {
        Self {
            stall_p: 0.02,
            stall_ns: 500_000.0,
            max_slowdown: 4.0,
            ..Self::none()
        }
    }

    /// Everything at once, at survivable intensity.
    pub fn storm() -> Self {
        Self {
            drop_p: 0.03,
            dup_p: 0.03,
            corrupt_p: 0.03,
            max_delay_ns: 1_000_000.0,
            stall_p: 0.01,
            stall_ns: 250_000.0,
            max_slowdown: 2.0,
        }
    }

    /// Every frame is dropped: the first remote send exhausts its retries
    /// and the run degrades to the host fallback. Unsurvivable by design.
    pub fn blackhole() -> Self {
        Self {
            drop_p: 1.0,
            ..Self::none()
        }
    }

    /// Looks a profile up by its [`PROFILE_NAMES`] name.
    pub fn by_name(name: &str) -> Option<Self> {
        Some(match name {
            "none" => Self::none(),
            "drop" => Self::drop(),
            "dup" => Self::dup(),
            "corrupt" => Self::corrupt(),
            "delay" => Self::delay(),
            "slow" => Self::slow(),
            "storm" => Self::storm(),
            "blackhole" => Self::blackhole(),
            _ => return None,
        })
    }
}

/// Per-frame fault decision for one transmission attempt. At most one of
/// `drop`/`corrupt` is set; `dup` and `delay_ns` only apply to frames that
/// are actually delivered intact.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkOutcome {
    /// The frame never arrives.
    pub drop: bool,
    /// The frame arrives with a corrupted payload.
    pub corrupt: bool,
    /// The frame arrives twice.
    pub dup: bool,
    /// Extra delivery delay, virtual nanoseconds.
    pub delay_ns: f64,
}

/// A seeded, deterministic fault schedule: the seed, the profile, and the
/// retry policy that must survive it.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The schedule seed.
    pub seed: u64,
    /// The fault intensity profile.
    pub profile: FaultProfile,
    /// The profile's name (for reports and journals).
    pub profile_name: String,
    /// Retry/timeout policy of the reliable transport.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// A plan with the named built-in profile; `None` if the name is
    /// unknown.
    pub fn new(seed: u64, profile_name: &str) -> Option<Self> {
        Some(Self {
            seed,
            profile: FaultProfile::by_name(profile_name)?,
            profile_name: profile_name.to_string(),
            retry: RetryPolicy::default(),
        })
    }

    /// Parses a `--chaos` argument: `SEED[:PROFILE]`, seed decimal or
    /// `0x`-hex, profile defaulting to `storm`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (seed_str, profile) = match spec.split_once(':') {
            Some((s, p)) => (s, p),
            None => (spec, "storm"),
        };
        let seed = match seed_str.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => seed_str.parse(),
        }
        .map_err(|_| format!("bad chaos seed {seed_str:?}"))?;
        FaultPlan::new(seed, profile).ok_or_else(|| {
            format!(
                "unknown chaos profile {profile:?}; valid choices are: {}",
                PROFILE_NAMES.join(", ")
            )
        })
    }

    fn hash(&self, stream: u64, a: u64, b: u64, c: u64, d: u64) -> u64 {
        let mut h = splitmix64(self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        h = splitmix64(h ^ a);
        h = splitmix64(h ^ b);
        h = splitmix64(h ^ c);
        h = splitmix64(h ^ d);
        h
    }

    /// The fault decision for attempt `attempt` of frame `seq` on link
    /// `src → dst`. Pure: depends only on the plan and the arguments.
    pub fn sample_link(&self, src: usize, dst: usize, seq: u64, attempt: u32) -> LinkOutcome {
        let (s, d, a) = (src as u64, dst as u64, attempt as u64);
        if u01(self.hash(S_DROP, s, d, seq, a)) < self.profile.drop_p {
            return LinkOutcome {
                drop: true,
                ..LinkOutcome::default()
            };
        }
        let corrupt = u01(self.hash(S_CORRUPT, s, d, seq, a)) < self.profile.corrupt_p;
        let dup = !corrupt && u01(self.hash(S_DUP, s, d, seq, a)) < self.profile.dup_p;
        let delay_ns = if self.profile.max_delay_ns > 0.0 && !corrupt {
            u01(self.hash(S_DELAY, s, d, seq, a)) * self.profile.max_delay_ns
        } else {
            0.0
        };
        LinkOutcome {
            drop: false,
            corrupt,
            dup,
            delay_ns,
        }
    }

    /// The node's fixed compute-slowdown factor (≥ 1.0).
    pub fn node_slowdown(&self, rank: usize) -> f64 {
        if self.profile.max_slowdown <= 1.0 {
            return 1.0;
        }
        1.0 + u01(self.hash(S_SLOW, rank as u64, 0, 0, 0)) * (self.profile.max_slowdown - 1.0)
    }

    /// Whether the node stalls before its `op`-th communication call, and
    /// for how long.
    pub fn sample_stall(&self, rank: usize, op: u64) -> Option<f64> {
        if self.profile.stall_p > 0.0
            && u01(self.hash(S_STALL, rank as u64, op, 0, 0)) < self.profile.stall_p
        {
            Some(self.profile.stall_ns)
        } else {
            None
        }
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from a hash.
fn u01(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// CRC-32 (IEEE, reflected) of `data` — bitwise, no table, fast enough
/// for simulated frames.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Encodes one transport frame: `seq` + CRC-32 header, then the payload.
/// With `corrupt` set, one payload byte (chosen from `seq`) is flipped
/// *after* the CRC is computed, so the receiver's check fails; an empty
/// payload corrupts the CRC field itself.
pub fn encode_frame(seq: u64, payload: &Bytes, corrupt: bool) -> Bytes {
    let mut b = BytesMut::with_capacity(FRAME_HEADER_LEN + payload.len());
    let crc = crc32(payload);
    b.put_u32_le(seq as u32);
    b.put_u32_le((seq >> 32) as u32);
    if corrupt && payload.is_empty() {
        b.put_u32_le(crc ^ 0xDEAD_BEEF);
    } else {
        b.put_u32_le(crc);
    }
    if corrupt && !payload.is_empty() {
        let mut body = payload.to_vec();
        let idx = seq as usize % body.len();
        body[idx] ^= 0xA5;
        b.extend_from_slice(&body);
    } else {
        b.extend_from_slice(payload);
    }
    b.freeze()
}

/// Decodes a transport frame; `Err` for truncated headers or CRC
/// mismatches (i.e. corrupted frames).
pub fn decode_frame(mut b: Bytes) -> Result<(u64, Bytes), FrameError> {
    if b.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Truncated { len: b.len() });
    }
    let lo = b.get_u32_le() as u64;
    let hi = b.get_u32_le() as u64;
    let crc = b.get_u32_le();
    if crc32(&b) != crc {
        return Err(FrameError::BadCrc);
    }
    Ok((lo | (hi << 32), b))
}

/// Why a transport frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than the frame header.
    Truncated {
        /// The observed length.
        len: usize,
    },
    /// The payload CRC did not match the header.
    BadCrc,
}

/// A fault that escaped the recovery machinery: the node program must
/// abort and the driver degrade to the host fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Retries exhausted on a link; the destination is unreachable.
    LinkDead {
        /// Sending rank.
        src: usize,
        /// Unreachable rank.
        dst: usize,
        /// Sequence number of the undeliverable frame.
        seq: u64,
    },
    /// A peer's channel disconnected mid-protocol (the peer aborted).
    PeerDown {
        /// This rank.
        rank: usize,
        /// The dead peer.
        peer: usize,
    },
    /// A collective was poisoned because some node aborted.
    CollectivePoisoned {
        /// This rank.
        rank: usize,
    },
    /// A payload failed to decode after transport-level recovery (should
    /// not happen; indicates a protocol bug rather than an injected
    /// fault).
    Malformed {
        /// This rank.
        rank: usize,
        /// What failed to decode.
        what: &'static str,
    },
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::LinkDead { src, dst, seq } => {
                write!(f, "link {src}->{dst} dead (frame {seq} undeliverable)")
            }
            Fault::PeerDown { rank, peer } => write!(f, "node {rank}: peer {peer} down"),
            Fault::CollectivePoisoned { rank } => write!(f, "node {rank}: collective poisoned"),
            Fault::Malformed { rank, what } => write!(f, "node {rank}: malformed {what}"),
        }
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        let plan = FaultPlan::new(42, "storm").unwrap();
        for seq in 0..100u64 {
            for attempt in 0..3 {
                assert_eq!(
                    plan.sample_link(1, 3, seq, attempt),
                    plan.sample_link(1, 3, seq, attempt)
                );
            }
        }
        assert_eq!(plan.node_slowdown(5), plan.node_slowdown(5));
        assert_eq!(plan.sample_stall(2, 17), plan.sample_stall(2, 17));
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1, "storm").unwrap();
        let b = FaultPlan::new(2, "storm").unwrap();
        let outcomes_a: Vec<_> = (0..200).map(|s| a.sample_link(0, 1, s, 0)).collect();
        let outcomes_b: Vec<_> = (0..200).map(|s| b.sample_link(0, 1, s, 0)).collect();
        assert_ne!(outcomes_a, outcomes_b);
    }

    #[test]
    fn drop_rate_is_roughly_calibrated() {
        let plan = FaultPlan::new(7, "drop").unwrap();
        let n = 20_000;
        let drops = (0..n)
            .filter(|&s| plan.sample_link(0, 1, s, 0).drop)
            .count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.01, "drop rate {rate}");
    }

    #[test]
    fn none_profile_injects_nothing() {
        let plan = FaultPlan::new(999, "none").unwrap();
        for seq in 0..500 {
            assert_eq!(plan.sample_link(0, 1, seq, 0), LinkOutcome::default());
        }
        assert_eq!(plan.node_slowdown(0), 1.0);
        assert_eq!(plan.sample_stall(0, 1), None);
    }

    #[test]
    fn blackhole_drops_everything() {
        let plan = FaultPlan::new(3, "blackhole").unwrap();
        for attempt in 0..20 {
            assert!(plan.sample_link(0, 1, 0, attempt).drop);
        }
    }

    #[test]
    fn parse_accepts_seed_and_profile() {
        let p = FaultPlan::parse("42").unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.profile_name, "storm");
        let p = FaultPlan::parse("0xBEEF:drop").unwrap();
        assert_eq!(p.seed, 0xBEEF);
        assert_eq!(p.profile_name, "drop");
        assert!(FaultPlan::parse("nope").is_err());
        assert!(FaultPlan::parse("1:nosuch").is_err());
    }

    #[test]
    fn every_named_profile_resolves() {
        for name in PROFILE_NAMES {
            assert!(FaultProfile::by_name(name).is_some(), "{name}");
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn frame_roundtrip() {
        let payload = Bytes::from_static(b"hello, fabric");
        let frame = encode_frame(0x1_0000_0007, &payload, false);
        let (seq, got) = decode_frame(frame).unwrap();
        assert_eq!(seq, 0x1_0000_0007);
        assert_eq!(got, payload);
    }

    #[test]
    fn corrupt_frames_fail_crc() {
        let payload = Bytes::from_static(b"hello");
        let frame = encode_frame(9, &payload, true);
        assert_eq!(decode_frame(frame), Err(FrameError::BadCrc));
        // Empty payloads are corrupted via the CRC field.
        let frame = encode_frame(9, &Bytes::new(), true);
        assert_eq!(decode_frame(frame), Err(FrameError::BadCrc));
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let frame = encode_frame(1, &Bytes::from_static(b"xy"), false);
        let truncated = Bytes::from(frame[..5].to_vec());
        assert_eq!(
            decode_frame(truncated),
            Err(FrameError::Truncated { len: 5 })
        );
    }
}
