//! Shared state behind the control-network collectives.
//!
//! A [`CollectiveCtx`] implements the all-gather skeleton every collective
//! reduces to: each rank deposits `(timestamp, value)` in its slot, waits
//! for the group, snapshots all slots, and waits again before slots are
//! reused. Two barrier phases make the slot array race-free without
//! generation counters on the slots themselves.
//!
//! The rendezvous barrier is *poisonable*: when a node program aborts on a
//! [`crate::fault::Fault`], the runtime calls [`CollectiveCtx::poison`],
//! which wakes every current and future waiter with [`Poisoned`] instead
//! of leaving them blocked forever on a peer that will never arrive. Since
//! a collective round can only complete with **all** nodes present, every
//! round either completes on every rank or poisons on every rank —
//! deterministically, regardless of host scheduling.

use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::{Condvar, Mutex as StdMutex};

/// Error: the collective context was poisoned because some node aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Poisoned;

/// A reusable generation-counting barrier whose waiters can be released
/// early (with an error) when the group is known never to re-form.
struct PoisonBarrier {
    n: usize,
    state: StdMutex<BarrierState>,
    cv: Condvar,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

impl PoisonBarrier {
    fn new(n: usize) -> Self {
        Self {
            n,
            state: StdMutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) -> Result<(), Poisoned> {
        let mut s = self.state.lock().expect("barrier mutex");
        if s.poisoned {
            return Err(Poisoned);
        }
        s.arrived += 1;
        if s.arrived == self.n {
            s.arrived = 0;
            s.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = s.generation;
        while s.generation == gen && !s.poisoned {
            s = self.cv.wait(s).expect("barrier mutex");
        }
        if s.generation != gen {
            // This round completed: every rank arrived, so the snapshot it
            // guards is fully formed. A poison flag observed here was set
            // by a node that died *after* this round — it belongs to a
            // later rendezvous and surfaces on the next wait. Failing here
            // instead would make a node's abort point depend on host
            // scheduling (whether it woke before or after the poisoner),
            // breaking replay determinism.
            Ok(())
        } else {
            Err(Poisoned)
        }
    }

    fn poison(&self) {
        let mut s = self.state.lock().expect("barrier mutex");
        s.poisoned = true;
        self.cv.notify_all();
    }
}

/// Rendezvous state shared by all nodes of one SPMD run.
pub struct CollectiveCtx {
    barrier: PoisonBarrier,
    clock_slots: Mutex<Vec<f64>>,
    byte_slots: Mutex<Vec<(f64, Bytes)>>,
    u64_slots: Mutex<Vec<(f64, u64)>>,
}

impl CollectiveCtx {
    /// Context for `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            barrier: PoisonBarrier::new(n),
            clock_slots: Mutex::new(vec![0.0; n]),
            byte_slots: Mutex::new(vec![(0.0, Bytes::new()); n]),
            u64_slots: Mutex::new(vec![(0.0, 0); n]),
        }
    }

    /// Poisons the rendezvous: every blocked or future collective call on
    /// any rank returns [`Poisoned`]. Called by the runtime when a node
    /// program aborts so its peers cascade out instead of deadlocking.
    pub fn poison(&self) {
        self.barrier.poison();
    }

    /// All-gather of clocks (used by barriers); fallible under poisoning.
    pub fn try_exchange_clock(&self, rank: usize, clock_ns: f64) -> Result<Vec<f64>, Poisoned> {
        self.clock_slots.lock()[rank] = clock_ns;
        self.barrier.wait()?;
        let snapshot = self.clock_slots.lock().clone();
        self.barrier.wait()?;
        Ok(snapshot)
    }

    /// All-gather of byte payloads (global concatenation); fallible under
    /// poisoning.
    pub fn try_exchange_bytes(
        &self,
        rank: usize,
        clock_ns: f64,
        payload: Bytes,
    ) -> Result<Vec<(f64, Bytes)>, Poisoned> {
        self.byte_slots.lock()[rank] = (clock_ns, payload);
        self.barrier.wait()?;
        let snapshot = self.byte_slots.lock().clone();
        self.barrier.wait()?;
        Ok(snapshot)
    }

    /// All-gather of `u64` values (reductions); fallible under poisoning.
    pub fn try_exchange_u64(
        &self,
        rank: usize,
        clock_ns: f64,
        v: u64,
    ) -> Result<Vec<(f64, u64)>, Poisoned> {
        self.u64_slots.lock()[rank] = (clock_ns, v);
        self.barrier.wait()?;
        let snapshot = self.u64_slots.lock().clone();
        self.barrier.wait()?;
        Ok(snapshot)
    }

    /// All-gather of clocks (used by barriers).
    ///
    /// # Panics
    /// Panics if the context was poisoned; use
    /// [`CollectiveCtx::try_exchange_clock`] on fallible paths.
    pub fn exchange_clock(&self, rank: usize, clock_ns: f64) -> Vec<f64> {
        self.try_exchange_clock(rank, clock_ns)
            .expect("collective poisoned")
    }

    /// All-gather of byte payloads (global concatenation).
    ///
    /// # Panics
    /// Panics if the context was poisoned.
    pub fn exchange_bytes(&self, rank: usize, clock_ns: f64, payload: Bytes) -> Vec<(f64, Bytes)> {
        self.try_exchange_bytes(rank, clock_ns, payload)
            .expect("collective poisoned")
    }

    /// All-gather of `u64` values (reductions).
    ///
    /// # Panics
    /// Panics if the context was poisoned.
    pub fn exchange_u64(&self, rank: usize, clock_ns: f64, v: u64) -> Vec<(f64, u64)> {
        self.try_exchange_u64(rank, clock_ns, v)
            .expect("collective poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn exchange_is_consistent_across_threads() {
        let n = 6;
        let ctx = Arc::new(CollectiveCtx::new(n));
        let results: Vec<Vec<(f64, u64)>> = std::thread::scope(|s| {
            let mut joins = Vec::new();
            for rank in 0..n {
                let ctx = Arc::clone(&ctx);
                joins.push(s.spawn(move || ctx.exchange_u64(rank, rank as f64, rank as u64 * 7)));
            }
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        for r in &results {
            assert_eq!(r, &results[0]);
            for (i, &(ts, v)) in r.iter().enumerate() {
                assert_eq!(ts, i as f64);
                assert_eq!(v, i as u64 * 7);
            }
        }
    }

    #[test]
    fn repeated_rounds_do_not_bleed() {
        let n = 4;
        let ctx = Arc::new(CollectiveCtx::new(n));
        std::thread::scope(|s| {
            for rank in 0..n {
                let ctx = Arc::clone(&ctx);
                s.spawn(move || {
                    for round in 0..50u64 {
                        let got = ctx.exchange_u64(rank, 0.0, round * 10 + rank as u64);
                        for (i, &(_, v)) in got.iter().enumerate() {
                            assert_eq!(v, round * 10 + i as u64, "round {round}");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn poison_releases_blocked_waiters() {
        // Three nodes, but only two ever arrive; the third poisons
        // instead. Without poisoning this would deadlock.
        let ctx = Arc::new(CollectiveCtx::new(3));
        let results: Vec<Result<Vec<(f64, u64)>, Poisoned>> = std::thread::scope(|s| {
            let mut joins = Vec::new();
            for rank in 0..2 {
                let ctx = Arc::clone(&ctx);
                joins.push(s.spawn(move || ctx.try_exchange_u64(rank, 0.0, rank as u64)));
            }
            let poisoner = Arc::clone(&ctx);
            s.spawn(move || {
                // Give the waiters a moment to block, then kill the group.
                std::thread::sleep(std::time::Duration::from_millis(20));
                poisoner.poison();
            });
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        for r in results {
            assert_eq!(r, Err(Poisoned));
        }
    }

    #[test]
    fn poison_after_completed_round_does_not_retract_it() {
        // A node that completes an exchange and then immediately dies must
        // not be able to retract the completed round from a peer that has
        // not woken up yet — otherwise the peer's abort point depends on
        // host scheduling. Hammer the window: rank 0 poisons right after
        // its exchange returns, while rank 1 may still be inside the
        // barrier wake-up path.
        for _ in 0..200 {
            let ctx = Arc::new(CollectiveCtx::new(2));
            let results: Vec<Result<Vec<(f64, u64)>, Poisoned>> = std::thread::scope(|s| {
                let mut joins = Vec::new();
                for rank in 0..2 {
                    let ctx = Arc::clone(&ctx);
                    joins.push(s.spawn(move || {
                        let r = ctx.try_exchange_u64(rank, 0.0, rank as u64);
                        if rank == 0 {
                            ctx.poison();
                        }
                        r
                    }));
                }
                joins.into_iter().map(|j| j.join().unwrap()).collect()
            });
            for r in results {
                assert_eq!(r, Ok(vec![(0.0, 0), (0.0, 1)]));
            }
        }
    }

    #[test]
    fn poisoned_context_rejects_future_calls() {
        let ctx = CollectiveCtx::new(1);
        assert!(ctx.try_exchange_clock(0, 1.0).is_ok());
        ctx.poison();
        assert_eq!(ctx.try_exchange_clock(0, 2.0), Err(Poisoned));
        assert_eq!(ctx.try_exchange_u64(0, 0.0, 1), Err(Poisoned));
        assert!(ctx.try_exchange_bytes(0, 0.0, Bytes::new()).is_err());
    }
}
