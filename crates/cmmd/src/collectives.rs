//! Shared state behind the control-network collectives.
//!
//! A [`CollectiveCtx`] implements the all-gather skeleton every collective
//! reduces to: each rank deposits `(timestamp, value)` in its slot, waits
//! for the group, snapshots all slots, and waits again before slots are
//! reused. Two barrier phases make the slot array race-free without
//! generation counters.

use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::Barrier;

/// Rendezvous state shared by all nodes of one SPMD run.
pub struct CollectiveCtx {
    barrier: Barrier,
    clock_slots: Mutex<Vec<f64>>,
    byte_slots: Mutex<Vec<(f64, Bytes)>>,
    u64_slots: Mutex<Vec<(f64, u64)>>,
}

impl CollectiveCtx {
    /// Context for `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            barrier: Barrier::new(n),
            clock_slots: Mutex::new(vec![0.0; n]),
            byte_slots: Mutex::new(vec![(0.0, Bytes::new()); n]),
            u64_slots: Mutex::new(vec![(0.0, 0); n]),
        }
    }

    /// All-gather of clocks (used by barriers).
    pub fn exchange_clock(&self, rank: usize, clock_ns: f64) -> Vec<f64> {
        self.clock_slots.lock()[rank] = clock_ns;
        self.barrier.wait();
        let snapshot = self.clock_slots.lock().clone();
        self.barrier.wait();
        snapshot
    }

    /// All-gather of byte payloads (global concatenation).
    pub fn exchange_bytes(&self, rank: usize, clock_ns: f64, payload: Bytes) -> Vec<(f64, Bytes)> {
        self.byte_slots.lock()[rank] = (clock_ns, payload);
        self.barrier.wait();
        let snapshot = self.byte_slots.lock().clone();
        self.barrier.wait();
        snapshot
    }

    /// All-gather of `u64` values (reductions).
    pub fn exchange_u64(&self, rank: usize, clock_ns: f64, v: u64) -> Vec<(f64, u64)> {
        self.u64_slots.lock()[rank] = (clock_ns, v);
        self.barrier.wait();
        let snapshot = self.u64_slots.lock().clone();
        self.barrier.wait();
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn exchange_is_consistent_across_threads() {
        let n = 6;
        let ctx = Arc::new(CollectiveCtx::new(n));
        let results: Vec<Vec<(f64, u64)>> = std::thread::scope(|s| {
            let mut joins = Vec::new();
            for rank in 0..n {
                let ctx = Arc::clone(&ctx);
                joins.push(s.spawn(move || ctx.exchange_u64(rank, rank as f64, rank as u64 * 7)));
            }
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        for r in &results {
            assert_eq!(r, &results[0]);
            for (i, &(ts, v)) in r.iter().enumerate() {
                assert_eq!(ts, i as f64);
                assert_eq!(v, i as u64 * 7);
            }
        }
    }

    #[test]
    fn repeated_rounds_do_not_bleed() {
        let n = 4;
        let ctx = Arc::new(CollectiveCtx::new(n));
        std::thread::scope(|s| {
            for rank in 0..n {
                let ctx = Arc::clone(&ctx);
                s.spawn(move || {
                    for round in 0..50u64 {
                        let got = ctx.exchange_u64(rank, 0.0, round * 10 + rank as u64);
                        for (i, &(_, v)) in got.iter().enumerate() {
                            assert_eq!(v, round * 10 + i as u64, "round {round}");
                        }
                    }
                });
            }
        });
    }
}
