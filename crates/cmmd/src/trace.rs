//! Causal trace events recorded by the node runtime.
//!
//! When tracing is armed ([`crate::Node::set_tracing`]) every point-to-point
//! send/receive and every collective records a [`TraceEvent`] stamped with
//! the node's virtual clock. Flow edges are correlated by
//! `(stream, src, dst, seq)`: the sender's `seq` counts logical sends per
//! destination, the receiver's counts accepted receives per source, and the
//! per-link FIFO channel guarantees the k-th accepted receive on a link is
//! the k-th logical send — so the pair shares one sequence number even when
//! the chaos transport retransmits underneath.
//!
//! `wait_ns` carries the *idle* portion of the operation, which is what the
//! downstream critical-path analysis attributes:
//!
//! - receive: clock advance caused by synchronising to the sender's
//!   arrival timestamp (blocked-waiting time; the fixed receive overhead
//!   is CPU work and excluded);
//! - collective: how long this node waited at the rendezvous for the
//!   latest peer to arrive (zero for the straggler itself);
//! - send: retry-timeout time charged by the fault-injection transport
//!   (zero on the fault-free fabric).

/// What kind of communication operation a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A logical point-to-point send (one per `send_*` call, regardless of
    /// retransmissions underneath). Recorded by the source rank.
    Send,
    /// A logical point-to-point receive (one accepted payload per
    /// `recv_*` call). Recorded by the destination rank.
    Recv,
    /// Participation in a control-network collective (barrier, concat,
    /// reduction, scan, broadcast, gather). Recorded by every rank; the
    /// per-node collective ordinal `seq` aligns participants across ranks
    /// because SPMD programs enter collectives in lockstep.
    Collective,
}

/// One traced communication operation at virtual time `t_ns`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Operation kind.
    pub kind: TraceKind,
    /// Program-point tag active on the recording rank (see
    /// [`crate::Node::set_trace_stream`]).
    pub stream: &'static str,
    /// Source rank (for collectives: the recording rank).
    pub src: u32,
    /// Destination rank (for collectives: the recording rank).
    pub dst: u32,
    /// Correlation sequence number: per-destination send ordinal,
    /// per-source receive ordinal, or per-node collective ordinal.
    pub seq: u64,
    /// Payload bytes (the logical payload, not retransmitted frames).
    pub bytes: u64,
    /// Virtual time at operation completion, nanoseconds.
    pub t_ns: f64,
    /// Idle portion of the operation, nanoseconds (see module docs).
    pub wait_ns: f64,
}

impl TraceEvent {
    /// The rank that recorded this event (source for sends and
    /// collectives, destination for receives).
    pub fn rank(&self) -> u32 {
        match self.kind {
            TraceKind::Send | TraceKind::Collective => self.src,
            TraceKind::Recv => self.dst,
        }
    }
}
