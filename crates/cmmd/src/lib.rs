//! # cmmd-sim
//!
//! A simulator for CMMD — the CM-5's message-passing library — built for
//! the reproduction of *"Solving the Region Growing Problem on the
//! Connection Machine"* (ICPP 1993).
//!
//! The paper's fastest implementation is Fortran 77 + CMMD on a 32-node
//! CM-5. This crate recreates that execution model: [`run_spmd`] launches
//! one thread per node running the same node program; each [`Node`] carries
//! point-to-point blocking/async sends and receives, control-network
//! collectives (barrier, global concatenation, reductions), and — the
//! paper's focus — two **all-to-many personalized communication** schemes,
//! [`CommScheme::LinearPermutation`] and [`CommScheme::Async`].
//!
//! Timing is *virtual*: every node advances its own clock by calibrated
//! per-operation costs ([`TimeParams`]); receives synchronise clocks
//! conservatively with sender timestamps. The reported makespan is the
//! maximum node clock — deterministic for a fixed program, independent of
//! host scheduling.
//!
//! ```
//! use cmmd_sim::{run_spmd, TimeParams, channel::encode_u32s, channel::decode_u32s};
//!
//! let res = run_spmd(4, TimeParams::cm5_mp(), |node| {
//!     let parts = node.concat(encode_u32s(&[node.rank() as u32]));
//!     parts.into_iter().flat_map(decode_u32s).sum::<u32>()
//! });
//! assert_eq!(res.results, vec![6, 6, 6, 6]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alltomany;
pub mod channel;
pub mod collectives;
pub mod fault;
pub mod runtime;
pub mod time;
pub mod trace;

pub use alltomany::{all_to_many, try_all_to_many, CommScheme};
pub use fault::{
    Fault, FaultCounters, FaultEvent, FaultKind, FaultPlan, FaultProfile, RetryPolicy,
    PROFILE_NAMES,
};
pub use runtime::{run_spmd, try_run_spmd, Node, SpmdAbort, SpmdResult};
pub use time::TimeParams;
pub use trace::{TraceEvent, TraceKind};
