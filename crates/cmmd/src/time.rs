//! Virtual-time parameters for the simulated CM-5 message-passing machine.
//!
//! Every node carries its own virtual clock (nanoseconds as `f64`). Local
//! computation advances the clock by `work × t_cpu`; communication charges
//! per-message setup (`α`) and per-byte bandwidth (`β`) costs, and a
//! receive completes no earlier than the sender's timestamp plus network
//! latency — a conservative per-message synchronisation, which is exactly
//! how CMMD's blocking primitives behaved.
//!
//! The constants below are calibrated so the *split-stage* rows of the
//! paper's tables (which are data-independent) land in the right range for
//! the F77+CMMD implementation: ~0.022 s for a 128² image and ~0.098 s for
//! 256² on 32 nodes. The merge stage then inherits the same constants.

/// Cost constants of the message-passing machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeParams {
    /// Per-unit local computation cost (one pixel visit / element
    /// operation), nanoseconds.
    pub t_cpu_ns: f64,
    /// Setup cost of a synchronous (blocking) send — the LP scheme's
    /// per-message price, nanoseconds.
    pub alpha_sync_ns: f64,
    /// Setup cost of an asynchronous send/receive posting, nanoseconds.
    /// CMMD's async primitives avoided the rendezvous handshake.
    pub alpha_async_ns: f64,
    /// Per-byte bandwidth cost, nanoseconds (CM-5 data network ≈ 10 MB/s
    /// usable per node → 100 ns/byte).
    pub beta_ns_per_byte: f64,
    /// Network latency added to every message, nanoseconds.
    pub net_latency_ns: f64,
    /// Loop/bookkeeping overhead of one Linear Permutation round,
    /// nanoseconds (paid Q−1 times per all-to-many, even for empty
    /// rounds — the reason LP loses to Async in the paper).
    pub round_overhead_ns: f64,
    /// Per-stage cost of the control-network tree (barriers, reductions,
    /// concatenation), nanoseconds.
    pub tree_stage_ns: f64,
    /// Fixed cost of completing any receive, nanoseconds.
    pub recv_overhead_ns: f64,
}

impl TimeParams {
    /// Calibrated constants for the paper's 32-node CM-5 (33 MHz SPARC
    /// nodes, fat-tree data network, control network collectives).
    pub fn cm5_mp() -> Self {
        Self {
            t_cpu_ns: 650.0,
            alpha_sync_ns: 120_000.0,
            alpha_async_ns: 35_000.0,
            beta_ns_per_byte: 100.0,
            net_latency_ns: 5_000.0,
            round_overhead_ns: 600_000.0,
            tree_stage_ns: 8_000.0,
            recv_overhead_ns: 10_000.0,
        }
    }
}

impl Default for TimeParams {
    fn default() -> Self {
        Self::cm5_mp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_cm5() {
        let d = TimeParams::default();
        assert_eq!(d, TimeParams::cm5_mp());
        // Async setup must be cheaper than sync — the paper's LP-vs-Async
        // result depends on it.
        assert!(d.alpha_async_ns < d.alpha_sync_ns);
        assert!(d.t_cpu_ns > 0.0);
    }
}
