//! All-to-many personalized communication.
//!
//! The merge stage's irregular communication — *"each of the node
//! processors sends zero or more messages to other processors in an
//! irregular fashion"* — is served by two schemes, exactly the two the
//! paper compares:
//!
//! * **Linear Permutation (LP)** (Ranka, Wang & Fox 1992): every node first
//!   obtains the full communication matrix by global concatenation, then in
//!   round `i` (for `0 < i < Q`) node `k` sends to `(k+i) mod Q` and
//!   receives from `(k−i) mod Q`, using synchronous message passing. All
//!   `Q−1` rounds are executed whether or not a given pair has traffic —
//!   the looping overhead the paper blames for LP's slower times.
//! * **Async**: the communication matrix is still exchanged (receivers must
//!   know how many messages to expect), but messages are posted with
//!   asynchronous sends and drained in arrival order.
//!
//! Both schemes deliver the identical multiset of `(source, payload)`
//! pairs; results are returned sorted by source so downstream processing is
//! deterministic regardless of arrival order.

use crate::channel::{encode_u32s, try_decode_u32s};
use crate::fault::Fault;
use crate::runtime::Node;
use bytes::Bytes;

/// Which all-to-many scheme to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommScheme {
    /// Synchronous Linear Permutation.
    LinearPermutation,
    /// Asynchronous sends.
    Async,
}

impl CommScheme {
    /// Short label used in reports ("LP" / "Async"), matching the paper's
    /// table rows.
    pub fn label(&self) -> &'static str {
        match self {
            CommScheme::LinearPermutation => "LP",
            CommScheme::Async => "Async",
        }
    }
}

/// Exchanges `outgoing` messages (destination, payload) with every other
/// node; returns the received messages sorted by source rank (stable for
/// multiple messages from one source).
///
/// Messages to self are delivered locally without network charges.
///
/// # Panics
/// Panics if an armed fault plan makes the exchange fail; chaos-aware
/// code must use [`try_all_to_many`].
pub fn all_to_many(
    node: &mut Node,
    outgoing: Vec<(usize, Bytes)>,
    scheme: CommScheme,
) -> Vec<(usize, Bytes)> {
    try_all_to_many(node, outgoing, scheme).expect("all-to-many failed under fault injection")
}

/// Fallible [`all_to_many`]: sends and receives ride the reliable
/// transport, so injected faults either heal transparently (costing
/// virtual retry time) or surface as a [`Fault`] for the caller to abort
/// on.
pub fn try_all_to_many(
    node: &mut Node,
    outgoing: Vec<(usize, Bytes)>,
    scheme: CommScheme,
) -> Result<Vec<(usize, Bytes)>, Fault> {
    let q = node.size();
    let me = node.rank();

    // Communication matrix: my outgoing message count per destination.
    let mut my_counts = vec![0u32; q];
    for (dst, _) in &outgoing {
        assert!(*dst < q, "destination {dst} out of range");
        my_counts[*dst] += 1;
    }
    // Global concatenation — both schemes need it (LP per the cited
    // algorithm; Async so receivers know how many messages to expect).
    let matrix: Vec<Vec<u32>> = node
        .try_concat(encode_u32s(&my_counts))?
        .into_iter()
        .map(|b| {
            try_decode_u32s(b).map_err(|_| Fault::Malformed {
                rank: me,
                what: "all-to-many count matrix",
            })
        })
        .collect::<Result<_, _>>()?;
    // Small local cost for scanning the matrix.
    node.compute((q * q) as u64 / 8);

    // Buckets of my messages per destination, preserving order.
    let mut buckets: Vec<Vec<Bytes>> = vec![Vec::new(); q];
    for (dst, payload) in outgoing {
        buckets[dst].push(payload);
    }

    let mut received: Vec<(usize, Bytes)> = Vec::new();
    // Self-delivery is free of network costs.
    for payload in buckets[me].drain(..) {
        received.push((me, payload));
    }

    match scheme {
        CommScheme::LinearPermutation => {
            for i in 1..q {
                let dst = (me + i) % q;
                let src = (me + q - i) % q;
                // The LP loop body runs every round, traffic or not.
                node.note_comm_round();
                node.charge_ns(node.params().round_overhead_ns);
                for payload in buckets[dst].drain(..) {
                    node.try_send_sync(dst, payload)?;
                }
                for _ in 0..matrix[src][me] {
                    let payload = node.try_recv_from(src)?;
                    received.push((src, payload));
                }
            }
        }
        CommScheme::Async => {
            // One logical round: everything is posted up front and drained
            // as it arrives.
            node.note_comm_round();
            // Post all sends asynchronously...
            for (dst, bucket) in buckets.iter_mut().enumerate() {
                if dst == me {
                    continue;
                }
                for payload in bucket.drain(..) {
                    node.try_send_async(dst, payload)?;
                }
            }
            // ...then drain the expected number from each source. Virtual
            // time is order-independent (max over arrivals), so polling
            // source-by-source is equivalent to CMMD's receive-any.
            for (src, row) in matrix.iter().enumerate() {
                if src == me {
                    continue;
                }
                for _ in 0..row[me] {
                    let payload = node.try_recv_from(src)?;
                    received.push((src, payload));
                }
            }
        }
    }

    received.sort_by_key(|&(src, _)| src);
    Ok(received)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{decode_u32s, encode_u32s};
    use crate::runtime::run_spmd;
    use crate::time::TimeParams;

    /// Every node sends `rank*100 + dst` to each odd destination.
    fn workload(node: &Node) -> Vec<(usize, Bytes)> {
        (0..node.size())
            .filter(|d| d % 2 == 1)
            .map(|d| (d, encode_u32s(&[(node.rank() * 100 + d) as u32])))
            .collect()
    }

    fn run_scheme(scheme: CommScheme) -> (Vec<Vec<(usize, u32)>>, f64) {
        let res = run_spmd(8, TimeParams::default(), move |node| {
            let out = workload(node);
            let got = all_to_many(node, out, scheme);
            got.into_iter()
                .map(|(src, b)| (src, decode_u32s(b)[0]))
                .collect::<Vec<_>>()
        });
        (res.results, res.max_seconds)
    }

    #[test]
    fn both_schemes_deliver_identical_messages() {
        let (lp, _) = run_scheme(CommScheme::LinearPermutation);
        let (async_, _) = run_scheme(CommScheme::Async);
        assert_eq!(lp, async_);
        // Odd ranks receive one message from every node; even ranks none.
        for (rank, msgs) in lp.iter().enumerate() {
            if rank % 2 == 1 {
                assert_eq!(msgs.len(), 8);
                for (src, v) in msgs {
                    assert_eq!(*v as usize, src * 100 + rank);
                }
            } else {
                assert!(msgs.is_empty());
            }
        }
    }

    #[test]
    fn async_is_faster_than_lp() {
        let (_, t_lp) = run_scheme(CommScheme::LinearPermutation);
        let (_, t_async) = run_scheme(CommScheme::Async);
        assert!(
            t_async < t_lp,
            "async {t_async} should beat LP {t_lp} (the paper's observation)"
        );
    }

    #[test]
    fn round_counters_reflect_schemes() {
        // One exchange on Q nodes: LP executes Q−1 rounds per node whether
        // or not a pair has traffic; Async always counts exactly one.
        for (scheme, expect) in [
            (CommScheme::LinearPermutation, 7u64),
            (CommScheme::Async, 1u64),
        ] {
            let res = run_spmd(8, TimeParams::default(), move |node| {
                let out = workload(node);
                let _ = all_to_many(node, out, scheme);
                node.comm_rounds()
            });
            assert!(
                res.results.iter().all(|&r| r == expect),
                "{scheme:?}: {:?}",
                res.results
            );
        }
    }

    #[test]
    fn empty_exchange_works() {
        for scheme in [CommScheme::LinearPermutation, CommScheme::Async] {
            let res = run_spmd(4, TimeParams::default(), move |node| {
                all_to_many(node, Vec::new(), scheme).len()
            });
            assert!(res.results.iter().all(|&n| n == 0));
        }
    }

    #[test]
    fn self_messages_are_delivered() {
        let res = run_spmd(3, TimeParams::default(), |node| {
            let out = vec![(node.rank(), encode_u32s(&[9]))];
            let got = all_to_many(node, out, CommScheme::Async);
            (got.len(), got[0].0)
        });
        for (rank, &(n, src)) in res.results.iter().enumerate() {
            assert_eq!(n, 1);
            assert_eq!(src, rank);
        }
    }

    #[test]
    fn chaos_exchange_matches_fault_free() {
        use crate::fault::FaultPlan;
        use crate::runtime::try_run_spmd;
        let run_with = |plan: Option<FaultPlan>, scheme: CommScheme| {
            try_run_spmd(6, TimeParams::default(), plan, move |node| {
                let out = workload(node);
                let got = try_all_to_many(node, out, scheme)?;
                Ok(got
                    .into_iter()
                    .map(|(src, b)| (src, decode_u32s(b)[0]))
                    .collect::<Vec<_>>())
            })
            .expect("survivable schedule aborted")
            .results
        };
        for scheme in [CommScheme::LinearPermutation, CommScheme::Async] {
            let clean = run_with(None, scheme);
            for profile in ["drop", "dup", "corrupt", "delay", "storm"] {
                for seed in [3u64, 11] {
                    let plan = FaultPlan::new(seed, profile).unwrap();
                    assert_eq!(
                        run_with(Some(plan), scheme),
                        clean,
                        "{scheme:?} {profile}/{seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn multiple_messages_per_destination() {
        let res = run_spmd(4, TimeParams::default(), |node| {
            // Everyone sends two messages to node 0.
            let out = vec![
                (0, encode_u32s(&[node.rank() as u32])),
                (0, encode_u32s(&[node.rank() as u32 + 100])),
            ];
            let got = all_to_many(node, out, CommScheme::LinearPermutation);
            got.into_iter()
                .map(|(s, b)| (s, decode_u32s(b)[0]))
                .collect::<Vec<_>>()
        });
        let at0 = &res.results[0];
        assert_eq!(at0.len(), 8);
        // Sorted by source, order preserved within a source.
        assert_eq!(at0[0], (0, 0));
        assert_eq!(at0[1], (0, 100));
        assert_eq!(at0[2], (1, 1));
        assert_eq!(at0[3], (1, 101));
    }
}
