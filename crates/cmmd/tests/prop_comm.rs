//! Property tests of the all-to-many schemes: for arbitrary communication
//! patterns, LP and Async deliver exactly the same messages, and the
//! virtual-time makespan never favours LP.

use cmmd_sim::channel::{decode_u32s, encode_u32s};
use cmmd_sim::{all_to_many, run_spmd, CommScheme, TimeParams};
use proptest::prelude::*;

/// Pattern: for each (src, dst) pair, how many messages (0..3).
fn run_pattern(q: usize, pattern: &[Vec<u8>], scheme: CommScheme) -> (Vec<Vec<(usize, u32)>>, f64) {
    let pattern = pattern.to_vec();
    let res = run_spmd(q, TimeParams::default(), move |node| {
        let me = node.rank();
        let mut out = Vec::new();
        for (dst, &count) in pattern[me].iter().enumerate() {
            for k in 0..count {
                out.push((
                    dst,
                    encode_u32s(&[(me * 1000 + dst * 10 + k as usize) as u32]),
                ));
            }
        }
        let got = all_to_many(node, out, scheme);
        got.into_iter()
            .map(|(src, b)| (src, decode_u32s(b)[0]))
            .collect::<Vec<_>>()
    });
    (res.results, res.max_seconds)
}

prop_compose! {
    fn pattern()(q in 2usize..9)(
        counts in proptest::collection::vec(proptest::collection::vec(0u8..3, q), q),
        q in Just(q),
    ) -> (usize, Vec<Vec<u8>>) {
        (q, counts)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lp_and_async_deliver_identically((q, pat) in pattern()) {
        let (lp, t_lp) = run_pattern(q, &pat, CommScheme::LinearPermutation);
        let (asy, t_async) = run_pattern(q, &pat, CommScheme::Async);
        prop_assert_eq!(&lp, &asy);
        // Every expected message arrives.
        for dst in 0..q {
            let expect: usize = (0..q).map(|src| pat[src][dst] as usize).sum();
            prop_assert_eq!(lp[dst].len(), expect);
        }
        // Async never loses to LP on virtual time.
        prop_assert!(t_async <= t_lp + 1e-12, "async {t_async} vs lp {t_lp}");
    }

    #[test]
    fn delivery_is_deterministic((q, pat) in pattern()) {
        let a = run_pattern(q, &pat, CommScheme::Async);
        let b = run_pattern(q, &pat, CommScheme::Async);
        prop_assert_eq!(a.0, b.0);
        prop_assert!((a.1 - b.1).abs() < 1e-15);
    }
}
