//! Property tests of the control-network collectives: for arbitrary node
//! counts (1..=16) and seeded per-node inputs, every collective agrees
//! with a scalar reference computed outside the simulator, on every rank.

use bytes::Bytes;
use cmmd_sim::channel::{decode_u32s, encode_u32s};
use cmmd_sim::{run_spmd, TimeParams};
use proptest::prelude::*;

/// Deterministic per-(seed, rank) test value.
fn val(seed: u64, rank: usize) -> u64 {
    let mut z = seed
        .wrapping_add(rank as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-rank payload: a rank-tagged word list of rank-dependent length.
fn payload(seed: u64, rank: usize) -> Vec<u32> {
    let n = (val(seed, rank) % 4) as usize + 1;
    (0..n)
        .map(|k| (rank as u32) << 16 | (k as u32) << 8 | (val(seed, rank + k) & 0xFF) as u32)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allreduce_u64_matches_scalar_fold(q in 1usize..=16, seed in any::<u64>()) {
        let res = run_spmd(q, TimeParams::default(), |node| {
            node.allreduce_u64(val(seed, node.rank()), |a, b| a.wrapping_add(b))
        });
        let want = (0..q).map(|r| val(seed, r)).fold(0u64, u64::wrapping_add);
        for (rank, got) in res.results.iter().enumerate() {
            prop_assert_eq!(*got, want, "rank {} of {}", rank, q);
        }
    }

    #[test]
    fn allreduce_max_and_min_match(q in 1usize..=16, seed in any::<u64>()) {
        let res = run_spmd(q, TimeParams::default(), |node| {
            let v = val(seed, node.rank());
            (node.allreduce_u64(v, u64::max), node.allreduce_u64(v, u64::min))
        });
        let want_max = (0..q).map(|r| val(seed, r)).max().unwrap();
        let want_min = (0..q).map(|r| val(seed, r)).min().unwrap();
        for &(max, min) in &res.results {
            prop_assert_eq!(max, want_max);
            prop_assert_eq!(min, want_min);
        }
    }

    #[test]
    fn allreduce_or_matches_any(q in 1usize..=16, seed in any::<u64>()) {
        // Roughly one node in four holds `true`.
        let res = run_spmd(q, TimeParams::default(), |node| {
            node.allreduce_or(val(seed, node.rank()).is_multiple_of(4))
        });
        let want = (0..q).any(|r| val(seed, r).is_multiple_of(4));
        for &got in &res.results {
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn scan_exclusive_matches_prefix_sum(q in 1usize..=16, seed in any::<u64>()) {
        let res = run_spmd(q, TimeParams::default(), |node| {
            node.scan_exclusive_u64(val(seed, node.rank()) % 1000, 0, |a, b| a + b)
        });
        let mut want = 0u64;
        for (rank, &got) in res.results.iter().enumerate() {
            prop_assert_eq!(got, want, "rank {} of {}", rank, q);
            want += val(seed, rank) % 1000;
        }
    }

    #[test]
    fn broadcast_delivers_root_payload_everywhere(q in 1usize..=16, seed in any::<u64>()) {
        let root = (val(seed, 777) % q as u64) as usize;
        let res = run_spmd(q, TimeParams::default(), move |node| {
            let words = payload(seed, node.rank());
            decode_u32s(node.broadcast(root, encode_u32s(&words)))
        });
        let want = payload(seed, root);
        for got in &res.results {
            prop_assert_eq!(got, &want);
        }
    }

    #[test]
    fn concat_collects_every_rank_in_order(q in 1usize..=16, seed in any::<u64>()) {
        let res = run_spmd(q, TimeParams::default(), move |node| {
            let words = payload(seed, node.rank());
            node.concat(encode_u32s(&words))
                .into_iter()
                .map(decode_u32s)
                .collect::<Vec<_>>()
        });
        let want: Vec<Vec<u32>> = (0..q).map(|r| payload(seed, r)).collect();
        for got in &res.results {
            prop_assert_eq!(got, &want);
        }
    }

    #[test]
    fn gather_to_collects_on_root_only(q in 1usize..=16, seed in any::<u64>()) {
        let root = (val(seed, 31) % q as u64) as usize;
        let res = run_spmd(q, TimeParams::default(), move |node| {
            let words = payload(seed, node.rank());
            node.gather_to(root, encode_u32s(&words))
                .into_iter()
                .map(decode_u32s)
                .collect::<Vec<_>>()
        });
        let want: Vec<Vec<u32>> = (0..q).map(|r| payload(seed, r)).collect();
        for (rank, got) in res.results.iter().enumerate() {
            if rank == root {
                prop_assert_eq!(got, &want);
            } else {
                prop_assert!(got.is_empty(), "non-root rank {} got {} parts", rank, got.len());
            }
        }
    }

    #[test]
    fn empty_payloads_are_legal_everywhere(q in 1usize..=16) {
        let res = run_spmd(q, TimeParams::default(), |node| {
            let parts = node.concat(Bytes::new());
            let bc = node.broadcast(0, Bytes::new());
            (parts.len(), parts.iter().all(|b| b.is_empty()), bc.is_empty())
        });
        for &(n, all_empty, bc_empty) in &res.results {
            prop_assert_eq!(n, q);
            prop_assert!(all_empty);
            prop_assert!(bc_empty);
        }
    }

    #[test]
    fn collectives_are_deterministic(q in 1usize..=16, seed in any::<u64>()) {
        let run = || {
            run_spmd(q, TimeParams::default(), |node| {
                let v = val(seed, node.rank());
                let sum = node.allreduce_u64(v, |a, b| a.wrapping_add(b));
                let pre = node.scan_exclusive_u64(v, 0, u64::wrapping_add);
                let all = node.concat(encode_u32s(&payload(seed, node.rank())));
                (sum, pre, all)
            })
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.results, b.results);
        prop_assert!((a.max_seconds - b.max_seconds).abs() < 1e-15);
    }
}
