//! Property tests: the sequential and concurrent union-find structures
//! implement the same partition semantics.

use proptest::prelude::*;
use rg_dsu::{ConcurrentDisjointSets, DisjointSets};

prop_compose! {
    fn ops()(
        n in 2usize..256,
    )(
        pairs in proptest::collection::vec((0usize.., 0usize..), 0..400),
        n in Just(n),
    ) -> (usize, Vec<(u32, u32)>) {
        (n, pairs.into_iter().map(|(a, b)| ((a % n) as u32, (b % n) as u32)).collect())
    }
}

proptest! {
    #[test]
    fn seq_and_concurrent_agree((n, pairs) in ops()) {
        let mut seq = DisjointSets::new(n);
        let conc = ConcurrentDisjointSets::new(n);
        for &(a, b) in &pairs {
            let x = seq.union(a, b);
            let y = conc.union(a, b);
            prop_assert_eq!(x, y, "union({},{}) disagreement", a, b);
        }
        for i in 0..n as u32 {
            for j in [0u32, i / 2, (i + 1) % n as u32] {
                prop_assert_eq!(seq.same_set(i, j), conc.same_set(i, j));
            }
        }
    }

    #[test]
    fn union_min_rep_root_is_minimum((n, pairs) in ops()) {
        let mut d = DisjointSets::new(n);
        for &(a, b) in &pairs {
            d.union_min_rep(a, b);
        }
        // Every root must be the minimum element of its set.
        let mut min_of_root = std::collections::HashMap::new();
        for i in 0..n as u32 {
            let r = d.find(i);
            let e = min_of_root.entry(r).or_insert(i);
            *e = (*e).min(i);
        }
        for (root, min) in min_of_root {
            prop_assert_eq!(root, min);
        }
    }

    #[test]
    fn num_sets_matches_distinct_roots((n, pairs) in ops()) {
        let mut d = DisjointSets::new(n);
        for &(a, b) in &pairs {
            d.union(a, b);
        }
        let roots: std::collections::HashSet<u32> = (0..n as u32).map(|i| d.find(i)).collect();
        prop_assert_eq!(roots.len(), d.num_sets());
        let labels = d.compact_labels();
        let distinct: std::collections::HashSet<u32> = labels.iter().copied().collect();
        prop_assert_eq!(distinct.len(), roots.len());
    }

    #[test]
    fn concurrent_parallel_equals_sequential((n, pairs) in ops()) {
        let conc = ConcurrentDisjointSets::new(n);
        std::thread::scope(|s| {
            for chunk in pairs.chunks(64.max(pairs.len() / 4 + 1)) {
                let conc = &conc;
                s.spawn(move || {
                    for &(a, b) in chunk {
                        conc.union(a, b);
                    }
                });
            }
        });
        let mut seq = DisjointSets::new(n);
        for &(a, b) in &pairs {
            seq.union(a, b);
        }
        for i in 0..n as u32 {
            prop_assert_eq!(conc.same_set(i, 0), seq.same_set(i, 0));
        }
    }
}
