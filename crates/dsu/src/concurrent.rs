//! Lock-free concurrent union-find.
//!
//! Parents live in `AtomicU32` words. `find` performs *path halving*
//! (grandparent splicing) with relaxed-failure CAS — safe because a stale
//! splice only ever points a node at another node in the same set, never
//! changing set membership. `union` links the larger root id under the
//! smaller one via CAS on the root's parent word and retries on contention,
//! following Anderson & Woll's randomized-linking-by-id scheme (linking by
//! *minimum id* rather than coin flips, which is the paper's representative
//! convention).
//!
//! Linearizability of `union`/`find` for this construction is standard; the
//! structure is lock-free: a failed CAS implies another thread made
//! progress.

use std::sync::atomic::{AtomicU32, Ordering};

/// A concurrent forest of disjoint sets over `0..len`.
///
/// All operations take `&self` and may be called from many threads
/// simultaneously (e.g. inside `rayon` parallel iterators).
#[derive(Debug)]
pub struct ConcurrentDisjointSets {
    parent: Vec<AtomicU32>,
}

impl ConcurrentDisjointSets {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        assert!(len <= u32::MAX as usize, "universe too large for u32 ids");
        Self {
            parent: (0..len as u32).map(AtomicU32::new).collect(),
        }
    }

    /// Size of the universe.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` iff the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative (smallest-id root) of `x`'s set.
    ///
    /// Performs path halving as it walks: each visited node is spliced to
    /// its grandparent with a best-effort CAS.
    pub fn find(&self, x: u32) -> u32 {
        let mut cur = x;
        loop {
            let p = self.parent[cur as usize].load(Ordering::Acquire);
            if p == cur {
                return cur;
            }
            let gp = self.parent[p as usize].load(Ordering::Acquire);
            if gp != p {
                // Path halving: try to splice cur -> grandparent. Failure is
                // fine; someone else already improved the path.
                let _ = self.parent[cur as usize].compare_exchange_weak(
                    p,
                    gp,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
            }
            cur = gp;
        }
    }

    /// Merges the sets of `a` and `b`. The smaller root id always wins (the
    /// paper's representative convention). Returns `false` if they were
    /// already in the same set.
    pub fn union(&self, a: u32, b: u32) -> bool {
        let mut ra = self.find(a);
        let mut rb = self.find(b);
        loop {
            if ra == rb {
                return false;
            }
            // Link the larger id under the smaller.
            let (hi, lo) = if ra < rb { (rb, ra) } else { (ra, rb) };
            match self.parent[hi as usize].compare_exchange(
                hi,
                lo,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(_) => {
                    // hi stopped being a root under us; re-resolve and retry.
                    ra = self.find(ra);
                    rb = self.find(rb);
                }
            }
        }
    }

    /// `true` iff `a` and `b` currently belong to the same set.
    ///
    /// Only meaningful as a snapshot when concurrent unions are quiescent;
    /// the merge engine calls it between iterations (a synchronisation
    /// point), never racing with unions.
    pub fn same_set(&self, a: u32, b: u32) -> bool {
        // Standard retry loop: find(a)==find(b) may be invalidated by a
        // racing union of a's root; re-check that the root is still a root.
        loop {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                return true;
            }
            if self.parent[ra as usize].load(Ordering::Acquire) == ra {
                return false;
            }
        }
    }

    /// Snapshots the structure into a plain parent vector (fully
    /// compressed: every entry points directly at its root).
    ///
    /// Must not race with unions.
    pub fn snapshot_roots(&self) -> Vec<u32> {
        (0..self.len() as u32).map(|x| self.find(x)).collect()
    }
}

impl From<&ConcurrentDisjointSets> for crate::seq::DisjointSets {
    /// Converts a quiescent concurrent forest into a sequential one with the
    /// same set partition.
    fn from(c: &ConcurrentDisjointSets) -> Self {
        let roots = c.snapshot_roots();
        let mut d = crate::seq::DisjointSets::new(roots.len());
        for (i, &r) in roots.iter().enumerate() {
            d.union_min_rep(i as u32, r);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_semantics() {
        let d = ConcurrentDisjointSets::new(6);
        assert!(d.union(0, 1));
        assert!(d.union(2, 3));
        assert!(!d.union(1, 0));
        assert!(d.same_set(0, 1));
        assert!(!d.same_set(0, 2));
        assert!(d.union(3, 0));
        assert!(d.same_set(1, 2));
    }

    #[test]
    fn min_id_becomes_root() {
        let d = ConcurrentDisjointSets::new(10);
        d.union(9, 4);
        assert_eq!(d.find(9), 4);
        d.union(4, 2);
        assert_eq!(d.find(9), 2);
        d.union(7, 9);
        assert_eq!(d.find(7), 2);
    }

    #[test]
    fn snapshot_matches_seq_conversion() {
        let d = ConcurrentDisjointSets::new(8);
        d.union(0, 4);
        d.union(4, 6);
        d.union(1, 3);
        let roots = d.snapshot_roots();
        assert_eq!(roots[6], 0);
        assert_eq!(roots[3], 1);
        let mut s: crate::seq::DisjointSets = (&d).into();
        assert!(s.same_set(0, 6));
        assert!(s.same_set(1, 3));
        assert!(!s.same_set(0, 1));
        assert_eq!(s.num_sets(), 5); // {0,4,6} {1,3} {2} {5} {7}
    }

    #[test]
    fn parallel_chain_union() {
        // Union a long chain from many threads; the final partition must be
        // a single set rooted at 0.
        let n = 50_000u32;
        let d = ConcurrentDisjointSets::new(n as usize);
        std::thread::scope(|s| {
            let threads = 8;
            for t in 0..threads {
                let d = &d;
                s.spawn(move || {
                    let mut i = t as u32;
                    while i + 1 < n {
                        d.union(i, i + 1);
                        i += threads as u32;
                    }
                });
            }
        });
        // Chains interleave: every (i, i+1) with i ≡ t mod 8 got unioned by
        // thread t, so the whole range is connected.
        for i in 0..n {
            assert_eq!(d.find(i), 0);
        }
    }

    #[test]
    fn parallel_random_unions_agree_with_sequential() {
        use rand::{Rng, SeedableRng};
        let n = 4_096usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let pairs: Vec<(u32, u32)> = (0..8_000)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();

        let conc = ConcurrentDisjointSets::new(n);
        rayon::scope(|s| {
            for chunk in pairs.chunks(500) {
                let conc = &conc;
                s.spawn(move |_| {
                    for &(a, b) in chunk {
                        conc.union(a, b);
                    }
                });
            }
        });

        let mut seq = crate::seq::DisjointSets::new(n);
        for &(a, b) in &pairs {
            seq.union(a, b);
        }

        // Same partition: roots pairwise-consistent.
        for i in 0..n as u32 {
            for &j in &[0u32, (i + 1) % n as u32, (i * 7 + 13) % n as u32] {
                assert_eq!(
                    conc.same_set(i, j),
                    seq.same_set(i, j),
                    "disagree on ({i},{j})"
                );
            }
        }
    }
}
