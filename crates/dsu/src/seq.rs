//! Sequential union-find with union by rank and full path compression.

/// A forest of disjoint sets over the universe `0..len`.
///
/// `find` compresses paths; `union` links by rank. Both are amortised
/// O(α(n)). Element indices are `u32` — the region-growing graphs never
/// exceed the pixel count of an image, which comfortably fits.
#[derive(Debug, Clone)]
pub struct DisjointSets {
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Number of distinct sets currently in the forest.
    num_sets: usize,
}

impl DisjointSets {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        assert!(len <= u32::MAX as usize, "universe too large for u32 ids");
        Self {
            parent: (0..len as u32).collect(),
            rank: vec![0; len],
            num_sets: len,
        }
    }

    /// Re-initialises the forest to `len` singleton sets **in place**,
    /// reusing the existing allocations when `len` fits in the current
    /// capacity. Equivalent to `*self = DisjointSets::new(len)` but
    /// allocation-free in steady state.
    pub fn reset(&mut self, len: usize) {
        assert!(len <= u32::MAX as usize, "universe too large for u32 ids");
        self.parent.clear();
        self.parent.extend(0..len as u32);
        self.rank.clear();
        self.rank.resize(len, 0);
        self.num_sets = len;
    }

    /// Size of the universe.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` iff the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of distinct sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Representative of `x`'s set, compressing the traversed path.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Second pass: point every node on the path at the root.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Representative of `x`'s set without mutating (no compression).
    pub fn find_immutable(&self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `false` if already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// Merges the sets of `a` and `b` making **the smaller root id the
    /// representative** — the paper's convention ("the region with the
    /// smaller ID becomes the representative of the two").
    ///
    /// Gives up union-by-rank, so worst-case depth is O(n); in the merge
    /// stage every union is followed by relabelling, which keeps paths
    /// short in practice.
    pub fn union_min_rep(&mut self, a: u32, b: u32) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (rep, other) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[other as usize] = rep;
        self.num_sets -= 1;
        true
    }

    /// `true` iff `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Resolves **every** element to its root in one batched pass, without
    /// mutating the forest (no per-element [`DisjointSets::find`] calls).
    ///
    /// The first sweep resolves all *monotone* links (`parent[v] ≤ v`) in
    /// strictly increasing index order — for forests built exclusively with
    /// [`DisjointSets::union_min_rep`] (the merge engine's convention) this
    /// single O(n) pass is already complete. Any remaining non-monotone
    /// links (possible under rank-based [`DisjointSets::union`]) are
    /// finished by pointer jumping (`out ← out[out]`), which halves every
    /// path per round and therefore terminates in O(log n) rounds.
    pub fn resolve_all(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.resolve_all_into(&mut out);
        out
    }

    /// [`DisjointSets::resolve_all`] writing into a caller-owned buffer
    /// (cleared first), so steady-state reuse performs no heap allocation
    /// once the buffer has reached its high-water capacity.
    pub fn resolve_all_into(&self, out: &mut Vec<u32>) {
        let n = self.parent.len();
        out.clear();
        out.reserve(n);
        for v in 0..n {
            let p = self.parent[v];
            out.push(if (p as usize) < v { out[p as usize] } else { p });
        }
        // Pointer jumping finishes non-monotone forests; for min-rep
        // forests the first verification round finds a fixpoint.
        loop {
            let mut changed = false;
            for v in 0..n {
                let hop = out[out[v] as usize];
                if hop != out[v] {
                    out[v] = hop;
                    changed = true;
                }
            }
            if !changed {
                return;
            }
        }
    }

    /// Rayon-parallel [`DisjointSets::resolve_all`]: classic synchronous
    /// pointer jumping (`out ← out[out]` until fixpoint). Deterministic —
    /// every round reads a snapshot and writes a fresh buffer — and
    /// identical output to the sequential variant.
    pub fn resolve_all_par(&self) -> Vec<u32> {
        use rayon::prelude::*;
        let mut cur = self.parent.clone();
        loop {
            // One synchronous jump round: every element reads the previous
            // round's snapshot, so the rounds are race-free by construction.
            let next: Vec<u32> = cur.par_iter().map(|&p| cur[p as usize]).collect();
            let changed = next.iter().zip(&cur).any(|(a, b)| a != b);
            cur = next;
            if !changed {
                return cur;
            }
        }
    }

    /// Compresses every path and returns the dense relabelling
    /// `element → compact set index` in `0..num_sets`, assigning compact
    /// indices in order of first appearance of each root.
    pub fn compact_labels(&mut self) -> Vec<u32> {
        let n = self.len();
        let mut map = std::collections::HashMap::new();
        let mut out = Vec::with_capacity(n);
        for x in 0..n as u32 {
            let r = self.find(x);
            let next = map.len() as u32;
            let id = *map.entry(r).or_insert(next);
            out.push(id);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut d = DisjointSets::new(5);
        assert_eq!(d.num_sets(), 5);
        assert_eq!(d.len(), 5);
        for i in 0..5 {
            assert_eq!(d.find(i), i);
        }
    }

    #[test]
    fn union_and_find() {
        let mut d = DisjointSets::new(6);
        assert!(d.union(0, 1));
        assert!(d.union(2, 3));
        assert!(!d.union(1, 0));
        assert!(d.same_set(0, 1));
        assert!(!d.same_set(0, 2));
        assert!(d.union(1, 3));
        assert!(d.same_set(0, 2));
        assert_eq!(d.num_sets(), 3);
    }

    #[test]
    fn union_min_rep_keeps_smallest() {
        let mut d = DisjointSets::new(10);
        d.union_min_rep(7, 3);
        assert_eq!(d.find(7), 3);
        d.union_min_rep(3, 9);
        assert_eq!(d.find(9), 3);
        d.union_min_rep(1, 9);
        assert_eq!(d.find(7), 1);
        assert_eq!(d.find(3), 1);
    }

    #[test]
    fn find_immutable_matches_find() {
        let mut d = DisjointSets::new(8);
        d.union(0, 1);
        d.union(1, 2);
        d.union(5, 6);
        for i in 0..8u32 {
            assert_eq!(d.find_immutable(i), d.clone().find(i));
        }
    }

    #[test]
    fn compact_labels_dense_and_consistent() {
        let mut d = DisjointSets::new(6);
        d.union(0, 2);
        d.union(3, 5);
        let labels = d.compact_labels();
        assert_eq!(labels.len(), 6);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[5]);
        assert_ne!(labels[0], labels[1]);
        // Dense: exactly num_sets distinct values covering 0..num_sets.
        let mut distinct: Vec<u32> = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), d.num_sets());
        assert_eq!(distinct, (0..d.num_sets() as u32).collect::<Vec<_>>());
        // First-appearance order: element 0's set gets label 0.
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], 1);
    }

    #[test]
    fn resolve_all_matches_find_on_min_rep_forest() {
        let mut d = DisjointSets::new(64);
        // Arbitrary min-rep unions, including chains.
        for (a, b) in [(3, 7), (7, 12), (0, 3), (20, 21), (21, 40), (63, 20)] {
            d.union_min_rep(a, b);
        }
        let resolved = d.resolve_all();
        let resolved_par = d.resolve_all_par();
        for v in 0..64u32 {
            assert_eq!(resolved[v as usize], d.find_immutable(v), "v={v}");
        }
        assert_eq!(resolved, resolved_par);
    }

    #[test]
    fn resolve_all_matches_find_on_rank_forest() {
        // Rank unions can produce non-monotone parent links; the pointer
        // jumping fallback must still resolve everything.
        let mut d = DisjointSets::new(50);
        for i in 0..49u32 {
            d.union(48 - i, 49 - i);
        }
        let resolved = d.resolve_all();
        let resolved_par = d.resolve_all_par();
        for v in 0..50u32 {
            assert_eq!(resolved[v as usize], d.find_immutable(v), "v={v}");
        }
        assert_eq!(resolved, resolved_par);
    }

    #[test]
    fn resolve_all_on_singletons_is_identity() {
        let d = DisjointSets::new(5);
        assert_eq!(d.resolve_all(), vec![0, 1, 2, 3, 4]);
        assert_eq!(d.resolve_all_par(), vec![0, 1, 2, 3, 4]);
        assert!(DisjointSets::new(0).resolve_all().is_empty());
    }

    #[test]
    fn reset_restores_singletons_and_reuses_capacity() {
        let mut d = DisjointSets::new(16);
        for i in 1..16u32 {
            d.union_min_rep(i - 1, i);
        }
        assert_eq!(d.num_sets(), 1);
        d.reset(16);
        assert_eq!(d.num_sets(), 16);
        for i in 0..16u32 {
            assert_eq!(d.find(i), i);
        }
        // Shrinking reset also works.
        d.reset(4);
        assert_eq!(d.len(), 4);
        assert_eq!(d.num_sets(), 4);
        // And behaves identically to a fresh forest afterwards.
        d.union_min_rep(3, 1);
        assert_eq!(d.find(3), 1);
    }

    #[test]
    fn resolve_all_into_matches_resolve_all() {
        let mut d = DisjointSets::new(32);
        for (a, b) in [(3, 7), (7, 12), (0, 3), (20, 21), (21, 30)] {
            d.union_min_rep(a, b);
        }
        let fresh = d.resolve_all();
        let mut reused = vec![9999u32; 5]; // stale garbage must be cleared
        d.resolve_all_into(&mut reused);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn long_chain_compresses() {
        let n = 10_000;
        let mut d = DisjointSets::new(n);
        for i in 1..n as u32 {
            d.union_min_rep(i - 1, i);
        }
        assert_eq!(d.num_sets(), 1);
        assert_eq!(d.find(n as u32 - 1), 0);
        // After compression the path from the deepest node is short.
        assert_eq!(d.parent[n - 1], 0);
    }
}
