//! # rg-dsu
//!
//! Disjoint-set (union-find) substrate for the region-growing reproduction.
//!
//! Two variants:
//!
//! * [`seq::DisjointSets`] — the classic sequential structure with union by
//!   rank and path compression (amortised inverse-Ackermann operations).
//!   Used by the sequential engines and by segmentation verification.
//! * [`concurrent::ConcurrentDisjointSets`] — a wait-free-find, lock-free
//!   union structure storing parents in `AtomicU32` words with CAS splicing
//!   and path halving, after Anderson & Woll. Used by the rayon merge engine
//!   where many mutual region pairs union in parallel within one iteration.
//!
//! Both expose the same core operations (`find`, `union`, `same_set`) so the
//! engines can be written against either.

#![warn(missing_docs)]
// The concurrent variant uses atomics only; no raw pointers.
#![forbid(unsafe_code)]

pub mod concurrent;
pub mod seq;

pub use concurrent::ConcurrentDisjointSets;
pub use seq::DisjointSets;
