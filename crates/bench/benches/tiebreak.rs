//! Tie-break ablation (the paper's "Resolving Ties at Random"): random
//! tie-breaking converges in fewer iterations than smallest/largest-ID on
//! tie-heavy scenes, and is therefore faster end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rg_core::{segment, Config, TieBreak};
use rg_imaging::Image;

fn bench_tiebreak(c: &mut Criterion) {
    let mut g = c.benchmark_group("tiebreak");
    g.sample_size(10);
    // A flat image is the maximal-tie workload: every edge weight is 0.
    let img: Image<u8> = Image::new(256, 256, 80);
    // Merge-only to stress the merge loop.
    let base = Config::with_threshold(0).max_square_log2(Some(3));
    for (name, tb) in [
        ("random", TieBreak::Random { seed: 42 }),
        ("smallest_id", TieBreak::SmallestId),
        ("largest_id", TieBreak::LargestId),
    ] {
        let cfg = Config {
            tie_break: tb,
            ..base
        };
        g.bench_with_input(BenchmarkId::new(name, 256), &img, |b, img| {
            b.iter(|| segment(img, &cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tiebreak);
criterion_main!(benches);
