//! Thread-scaling of the rayon engine: the modern analogue of the paper's
//! processor-count comparison (8K vs 16K CM-2 processors).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rg_core::{segment_par, Config};
use rg_imaging::synth;

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("thread_scaling");
    g.sample_size(10);
    let img = synth::circle_collection(512);
    let cfg = Config::with_threshold(10);
    let max = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut threads = vec![1usize, 2];
    let mut t = 4;
    while t <= max {
        threads.push(t);
        t *= 2;
    }
    for &t in &threads {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .expect("pool");
        g.bench_with_input(BenchmarkId::new("segment_par", t), &img, |b, img| {
            b.iter(|| pool.install(|| segment_par(img, &cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
