//! Wall-clock benchmark of the split stage: sequential vs rayon, across
//! image sizes and scene types (the modern analogue of the paper's split
//! rows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rg_core::{split, split_par, Config};
use rg_imaging::synth;

fn bench_split(c: &mut Criterion) {
    let mut g = c.benchmark_group("split");
    for &n in &[128usize, 256, 512] {
        let nested = synth::nested_rects(n);
        let noise = synth::uniform_noise(n, n, 100, 105, 7);
        let cfg = Config::with_threshold(10);
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::new("seq/nested", n), &nested, |b, img| {
            b.iter(|| split(img, &cfg))
        });
        g.bench_with_input(BenchmarkId::new("par/nested", n), &nested, |b, img| {
            b.iter(|| split_par(img, &cfg))
        });
        // Noise within threshold: the best case (everything coalesces).
        g.bench_with_input(BenchmarkId::new("seq/noise", n), &noise, |b, img| {
            b.iter(|| split(img, &cfg))
        });
        g.bench_with_input(BenchmarkId::new("par/noise", n), &noise, |b, img| {
            b.iter(|| split_par(img, &cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_split);
criterion_main!(benches);
