//! Wall-clock benchmark of the full pipeline on the paper's six images.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rg_core::{segment, segment_par, Config};
use rg_imaging::synth::PaperImage;

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(20);
    for pi in PaperImage::ALL {
        let img = pi.generate();
        let cfg = Config::with_threshold(10);
        g.bench_with_input(
            BenchmarkId::new("seq", format!("{pi:?}")),
            &img,
            |b, img| b.iter(|| segment(img, &cfg)),
        );
        g.bench_with_input(
            BenchmarkId::new("par", format!("{pi:?}")),
            &img,
            |b, img| b.iter(|| segment_par(img, &cfg)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
