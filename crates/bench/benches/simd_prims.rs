//! Throughput of the cm-sim data-parallel primitives (host execution).

use cm_sim::{CostModel, Field, Machine, Shape};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_prims(c: &mut Criterion) {
    let mut g = c.benchmark_group("simd_prims");
    let n = 1 << 16;
    g.throughput(Throughput::Elements(n as u64));
    let m = Machine::new(CostModel::cm2_8k());
    let a: Field<u32> = Field::from_vec(Shape::one_d(n), (0..n as u32).collect());
    let dest: Field<u32> = Field::from_vec(Shape::one_d(n), (0..n as u32).map(|i| i / 4).collect());

    g.bench_function(BenchmarkId::new("map", n), |b| {
        b.iter(|| m.map(&a, |x| x.wrapping_mul(3)))
    });
    g.bench_function(BenchmarkId::new("scan_inclusive", n), |b| {
        b.iter(|| m.scan_inclusive(&a, |x, y| x.wrapping_add(y)))
    });
    g.bench_function(BenchmarkId::new("send_min", n), |b| {
        b.iter(|| {
            let mut out = Field::constant(Shape::one_d(n), u32::MAX);
            m.send_combine(&dest, &a, None, &mut out, u32::min);
            out
        })
    });
    g.bench_function(BenchmarkId::new("get", n), |b| {
        b.iter(|| m.get(&a, &dest, None, 0))
    });
    g.bench_function(BenchmarkId::new("sort_by_key", n), |b| {
        b.iter(|| m.sort_by_key(&a, |x| x.wrapping_mul(0x9E3779B9)))
    });
    g.finish();
}

criterion_group!(benches, bench_prims);
criterion_main!(benches);
