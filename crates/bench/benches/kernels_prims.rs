//! Throughput of the shared word-parallel split kernels in
//! `rg_core::kernels`: the even-bit gather (inverse Morton compaction),
//! the pair-AND-compress coalesce step, and the 2×2 gather + lane folds
//! the packed SoA pyramid is built from. Companion to `simd_prims.rs`
//! (the cm-sim field primitives) and `telemetry_overhead.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rg_core::kernels::{
    coalesce_pair_words, gather2x2, gather_even_bits, lane_max4, lane_min4, lane_sum4,
    pair_and_compress,
};

fn xorshift(mut s: u64) -> impl FnMut() -> u64 {
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

fn bench_bit_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels_prims");
    let n = 1 << 12;
    let mut rng = xorshift(0x243F_6A88_85A3_08D3);
    let words: Vec<u64> = (0..n).map(|_| rng()).collect();
    let pairs: Vec<(u64, u64)> = (0..n).map(|_| (rng(), rng())).collect();

    // Each call tests 64 blocks (one packed word).
    g.throughput(Throughput::Elements(n as u64 * 64));
    g.bench_function(BenchmarkId::new("gather_even_bits", n), |b| {
        b.iter(|| words.iter().fold(0u64, |acc, &w| acc ^ gather_even_bits(w)))
    });
    g.bench_function(BenchmarkId::new("pair_and_compress", n), |b| {
        b.iter(|| {
            words
                .iter()
                .fold(0u64, |acc, &w| acc ^ pair_and_compress(w))
        })
    });
    g.bench_function(BenchmarkId::new("coalesce_pair_words", n), |b| {
        b.iter(|| {
            pairs
                .iter()
                .fold(0u64, |acc, &(lo, hi)| acc ^ coalesce_pair_words(lo, hi))
        })
    });
    g.finish();
}

fn bench_lane_folds(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels_lane_folds");
    let side = 256usize;
    let mut rng = xorshift(0x1319_8A2E_0370_7344);
    let plane: Vec<u8> = (0..side * side).map(|_| rng() as u8).collect();
    let sums: Vec<u64> = (0..side * side).map(|_| rng() & 0xFFFF).collect();
    let blocks = (side / 2) * (side / 2);
    g.throughput(Throughput::Elements(blocks as u64));

    // The per-block body of `fold_level`: 2×2 gather + branch-free lane
    // min/max/sum over a quarter-resolution output grid.
    g.bench_function(BenchmarkId::new("gather2x2_min_max", side), |b| {
        b.iter(|| {
            let (mut lo, mut hi) = (0u32, 0u32);
            for by in 0..side / 2 {
                for bx in 0..side / 2 {
                    let kids = gather2x2(&plane, side, bx, by);
                    lo += u32::from(lane_min4(kids));
                    hi += u32::from(lane_max4(kids));
                }
            }
            (lo, hi)
        })
    });
    g.bench_function(BenchmarkId::new("gather2x2_sum", side), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for by in 0..side / 2 {
                for bx in 0..side / 2 {
                    acc = acc.wrapping_add(lane_sum4(gather2x2(&sums, side, bx, by)));
                }
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_bit_kernels, bench_lane_folds);
criterion_main!(benches);
