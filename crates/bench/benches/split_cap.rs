//! Ablation of the split stage's square cap: how much merge work does the
//! split preprocessing save? Cap 0 disables the split (merge-only
//! baseline); larger caps hand the merge stage fewer, bigger units.
//! (DESIGN.md design-choice ablation.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rg_core::{segment, Config};
use rg_imaging::synth;

fn bench_split_cap(c: &mut Criterion) {
    let mut g = c.benchmark_group("split_cap");
    g.sample_size(10);
    let img = synth::rect_collection(256);
    for cap in [Some(0u8), Some(2), Some(4), None] {
        let cfg = Config::with_threshold(10).max_square_log2(cap);
        let label = cap.map_or("unbounded".to_string(), |c| format!("cap_{c}"));
        g.bench_with_input(BenchmarkId::new(label, 256), &img, |b, img| {
            b.iter(|| segment(img, &cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_split_cap);
criterion_main!(benches);
