//! Host-side cost of the two all-to-many schemes on the simulated CM-5
//! (the simulated-time comparison lives in `paper_tables`; this measures
//! the simulator itself as a parallel workload).

use cmmd_sim::CommScheme;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rg_core::Config;
use rg_imaging::synth;
use rg_msgpass::segment_msgpass;

fn bench_comm_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("comm_schemes");
    g.sample_size(10);
    let img = synth::rect_collection(128);
    let cfg = Config::with_threshold(10);
    for (name, scheme) in [
        ("lp", CommScheme::LinearPermutation),
        ("async", CommScheme::Async),
    ] {
        g.bench_with_input(BenchmarkId::new(name, 32), &img, |b, img| {
            b.iter(|| segment_msgpass(img, &cfg, 32, scheme))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_comm_schemes);
criterion_main!(benches);
