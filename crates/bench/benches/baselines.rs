//! Baseline comparison: the paper's parallel split-and-merge vs the
//! sequential classics it builds on (CCL, seeded growing,
//! Horowitz-Pavlidis), wall clock on the host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rg_baselines::{ccl, hp, seeded};
use rg_core::{segment, segment_par, Config, Connectivity};
use rg_imaging::synth;

fn bench_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("baselines");
    g.sample_size(20);
    let img = synth::circle_collection(256);
    let cfg = Config::with_threshold(10);
    g.bench_function(BenchmarkId::new("split_merge_seq", 256), |b| {
        b.iter(|| segment(&img, &cfg))
    });
    g.bench_function(BenchmarkId::new("split_merge_par", 256), |b| {
        b.iter(|| segment_par(&img, &cfg))
    });
    g.bench_function(BenchmarkId::new("seeded_growing", 256), |b| {
        b.iter(|| seeded::grow_regions(&img, &cfg))
    });
    g.bench_function(BenchmarkId::new("horowitz_pavlidis", 256), |b| {
        b.iter(|| hp::split_and_merge(&img, &cfg))
    });
    g.bench_function(BenchmarkId::new("ccl", 256), |b| {
        b.iter(|| ccl::label_components(&img, Connectivity::Four))
    });
    g.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
