//! Wall-clock benchmark of the merge stage in isolation: sequential vs
//! rayon engines on the paper's busiest scene type (circles), plus the
//! merge-only baseline quantifying the split stage's benefit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rg_core::engine::merge_from_split;
use rg_core::{split, Config};
use rg_imaging::synth;

fn bench_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge");
    g.sample_size(20);
    for &n in &[128usize, 256] {
        let img = synth::circle_collection(n);
        let cfg = Config::with_threshold(10);
        let pre = split(&img, &cfg);
        g.bench_with_input(BenchmarkId::new("seq", n), &pre, |b, pre| {
            b.iter(|| merge_from_split(pre, &cfg, false))
        });
        g.bench_with_input(BenchmarkId::new("par", n), &pre, |b, pre| {
            b.iter(|| merge_from_split(pre, &cfg, true))
        });
        // Merge-only baseline: every pixel starts as a region — the work
        // the split stage saves (the paper's motivation for splitting).
        let cfg0 = Config::with_threshold(10).max_square_log2(Some(0));
        let pre0 = split(&img, &cfg0);
        g.bench_with_input(BenchmarkId::new("seq/no-split", n), &pre0, |b, pre| {
            b.iter(|| merge_from_split(pre, &cfg0, false))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
