//! Telemetry overhead benchmark: the disabled path (`NullTelemetry`) must
//! cost the same as the plain entry point — the `enabled()` short-circuit
//! is checked once per stage, so a disabled sink adds no per-iteration
//! work — while the in-memory streaming sink quantifies the full price of
//! recording every span and event.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rg_core::{segment, segment_with_telemetry, Config, EventLog, NullTelemetry, Recorder};
use rg_imaging::synth;

fn bench_telemetry_overhead(c: &mut Criterion) {
    let img = synth::circle_collection(128);
    let cfg = Config::with_threshold(10);
    let mut g = c.benchmark_group("telemetry_overhead");
    g.sample_size(20);

    g.bench_function(BenchmarkId::from_parameter("plain"), |b| {
        b.iter(|| segment(&img, &cfg))
    });
    g.bench_function(BenchmarkId::from_parameter("null_sink"), |b| {
        b.iter(|| {
            let mut null = NullTelemetry;
            segment_with_telemetry(&img, &cfg, &mut null)
        })
    });
    g.bench_function(BenchmarkId::from_parameter("recorder"), |b| {
        b.iter(|| {
            let mut rec = Recorder::new();
            segment_with_telemetry(&img, &cfg, &mut rec)
        })
    });
    g.bench_function(BenchmarkId::from_parameter("event_log"), |b| {
        b.iter(|| {
            let mut log = EventLog::in_memory();
            segment_with_telemetry(&img, &cfg, &mut log)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
