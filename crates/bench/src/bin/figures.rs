//! Regenerates the paper's three figures.
//!
//! ```text
//! cargo run --release -p rg-bench --bin figures -- fig1   # split worked example
//! cargo run --release -p rg-bench --bin figures -- fig2   # merge walkthrough
//! cargo run --release -p rg-bench --bin figures -- fig3   # merge-time bar series (+ CSV)
//! cargo run --release -p rg-bench --bin figures           # all three
//! ```

use rg_bench::tables::{paper_config, run_all_platforms};
use rg_core::graph::Rag;
use rg_core::{split, Config, Connectivity, Merger, TieBreak};
use rg_imaging::synth::{figure1_image, PaperImage};

fn main() {
    let arg = std::env::args().nth(1);
    match arg.as_deref() {
        Some("fig1") => fig1(),
        Some("fig2") => fig2(),
        Some("fig3") => fig3(),
        None => {
            fig1();
            fig2();
            fig3();
        }
        Some(other) => {
            eprintln!("unknown figure {other:?}; use fig1|fig2|fig3");
            std::process::exit(2);
        }
    }
}

/// Figure 1: the split stage on the 4x4 worked example, T = 3.
fn fig1() {
    println!("== Figure 1: The Split Stage (4x4 image, T = 3) ==\n");
    let img = figure1_image();
    println!("(a) at start of the split stage:");
    for y in 0..4 {
        let row: Vec<String> = (0..4).map(|x| img.get(x, y).to_string()).collect();
        println!("    {}", row.join(" "));
    }
    let cfg = Config::with_threshold(3);
    let s = split(&img, &cfg);
    println!(
        "\n(b) after {} split iteration(s): {} square regions",
        s.iterations,
        s.num_squares()
    );
    for (i, sq) in s.squares.iter().enumerate() {
        println!(
            "    region {i}: {}x{} square at ({}, {}), intensities {}..{}",
            sq.side(),
            sq.side(),
            sq.x,
            sq.y,
            s.stats[i].min,
            s.stats[i].max
        );
    }
    println!();
}

/// Figure 2: the merge stage on the same example, smallest-ID ties.
fn fig2() {
    println!("== Figure 2: The Merge Stage (4x4 image, T = 3, smallest-ID ties) ==\n");
    let img = figure1_image();
    let cfg = Config::with_threshold(3).tie_break(TieBreak::SmallestId);
    let s = split(&img, &cfg);
    let rag = Rag::from_split(&s, Connectivity::Four);
    println!(
        "(a) at start of the merge stage: {} regions, {} RAG edges",
        rag.num_vertices(),
        rag.num_edges()
    );
    let ids: Vec<u64> = s.squares.iter().map(|sq| sq.id(4) as u64).collect();
    let mut merger = Merger::new(rag, ids, &cfg, false);
    let mut step = 0;
    let captions = ["(b)", "(c)", "(d)"];
    while !merger.is_done() {
        let r = merger.step();
        let label = captions.get(step).copied().unwrap_or("(+)");
        step += 1;
        println!(
            "{label} after merge iteration {}: {} merges, {} regions, {} active edges",
            merger.iterations(),
            r.merges,
            merger.num_regions(),
            merger.active_edges()
        );
        let labels = merger.labels_by_vertex();
        println!("    region membership (vertex -> representative): {labels:?}");
    }
    println!(
        "\nfinal: {} regions after {} iterations (paper: 2 regions after 3 iterations)\n",
        merger.num_regions(),
        merger.iterations()
    );
}

/// Figure 3: merge-stage seconds for images 1-6 across the five platforms.
fn fig3() {
    println!("== Figure 3: Comparison of Times Taken by the Merge Stage ==\n");
    let mut csv = String::from("image,platform,merge_seconds,paper_merge_seconds\n");
    let mut names: Vec<String> = Vec::new();
    let mut series: Vec<Vec<f64>> = Vec::new();
    for (i, pi) in PaperImage::ALL.into_iter().enumerate() {
        let rows = run_all_platforms(pi);
        let refs = rg_bench::tables::paper_reference(pi);
        if i == 0 {
            names = rows.iter().map(|r| r.platform.clone()).collect();
            series = vec![Vec::new(); rows.len()];
        }
        for (j, (r, p)) in rows.iter().zip(refs.iter()).enumerate() {
            series[j].push(r.merge_s);
            csv.push_str(&format!(
                "Image {},{},{:.3},{:.3}\n",
                i + 1,
                r.platform,
                r.merge_s,
                p.merge_s
            ));
        }
        // paper_config(pi.size()) recomputed inside run_all_platforms; the
        // explicit call here keeps the binary self-documenting.
        let _ = paper_config(pi.size());
    }
    // Text bar chart, one group per image like the paper's figure.
    let max = series
        .iter()
        .flat_map(|s| s.iter().copied())
        .fold(0.0f64, f64::max);
    for (i, _) in PaperImage::ALL.iter().enumerate() {
        println!("Image {}:", i + 1);
        for (j, name) in names.iter().enumerate() {
            let v = series[j][i];
            let bar = "#".repeat(((v / max) * 50.0).round() as usize);
            println!("  {name:<40} {v:>8.3}s {bar}");
        }
    }
    let path = "figure3.csv";
    std::fs::write(path, &csv).expect("write figure3.csv");
    println!("\nseries written to {path}\n");
}
