//! Records the merge-stage benchmark trajectory to `BENCH_merge.json`.
//!
//! Runs the incremental CSR backend and the reference edge-list backend on
//! the same split results and records throughput (`edges_per_sec`), wall
//! time, iteration counts, live-edge peaks, and the machine-independent
//! `relabel_work` counter that the CI perf-smoke job guards on.
//!
//! ```text
//! cargo run --release -p rg-bench --bin bench_record                  # 512x512, write BENCH_merge.json
//! cargo run --release -p rg-bench --bin bench_record -- --quick      # 256x256 (CI smoke)
//! cargo run --release -p rg-bench --bin bench_record -- --check     # exit 1 if CSR does more relabel work
//! cargo run --release -p rg-bench --bin bench_record -- --out /tmp/b.json
//! ```
//!
//! `edges_per_sec` is `initial_edges x iterations / wall_seconds`: the rate
//! at which the engine would traverse the *initial* edge set once per
//! iteration — exactly the work the reference backend actually does, so the
//! CSR backend's number directly exposes how much of that traversal the
//! incremental structure skips.

use std::time::Instant;

use rg_core::graph::Rag;
use rg_core::json::Json;
use rg_core::{split, Config, MergeBackend, Merger, TieBreak};
use rg_imaging::{synth, GrayImage};

/// One benchmarked configuration.
struct Row {
    backend: MergeBackend,
    image: &'static str,
    tie_break: &'static str,
    threshold: u32,
    initial_edges: u64,
    iterations: u32,
    num_regions: usize,
    wall_ms: f64,
    edges_per_sec: f64,
    peak_live_edges: u64,
    relabel_work: u64,
    compactions: u64,
}

fn bench_one(
    img: &GrayImage,
    image_name: &'static str,
    threshold: u32,
    tie: TieBreak,
    tie_name: &'static str,
    backend: MergeBackend,
) -> Row {
    let cfg = Config {
        merge_backend: backend,
        ..Config::with_threshold(threshold).tie_break(tie)
    };
    let s = split(img, &cfg);
    let rag = Rag::from_split(&s, cfg.connectivity);
    let initial_edges = rag.num_edges() as u64;
    let stride = s.width as u32;
    let ids: Vec<u64> = s.squares.iter().map(|sq| sq.id(stride) as u64).collect();

    // Warm-up pass (page in buffers, steady-state allocator), then the
    // timed pass on a fresh Merger over the same RAG.
    let warm = Rag::from_split(&s, cfg.connectivity);
    Merger::new(warm, ids.clone(), &cfg, false).run();

    let mut merger = Merger::new(rag, ids, &cfg, false);
    let t0 = Instant::now();
    let summary = merger.run();
    let wall = t0.elapsed().as_secs_f64();

    let edges_per_sec = if wall > 0.0 {
        (initial_edges as f64) * f64::from(summary.iterations) / wall
    } else {
        0.0
    };
    Row {
        backend,
        image: image_name,
        tie_break: tie_name,
        threshold,
        initial_edges,
        iterations: summary.iterations,
        num_regions: summary.num_regions,
        wall_ms: wall * 1e3,
        edges_per_sec,
        peak_live_edges: merger.peak_active_edges(),
        relabel_work: merger.relabel_work(),
        compactions: merger.compactions(),
    }
}

fn row_json(r: &Row) -> Json {
    Json::obj(vec![
        ("backend", Json::Str(r.backend.name().to_string())),
        ("image", Json::Str(r.image.to_string())),
        ("tie_break", Json::Str(r.tie_break.to_string())),
        ("threshold", Json::Num(f64::from(r.threshold))),
        ("initial_edges", Json::Num(r.initial_edges as f64)),
        ("iterations", Json::Num(f64::from(r.iterations))),
        ("num_regions", Json::Num(r.num_regions as f64)),
        ("wall_ms", Json::Num((r.wall_ms * 1e3).round() / 1e3)),
        ("edges_per_sec", Json::Num(r.edges_per_sec.round())),
        ("peak_live_edges", Json::Num(r.peak_live_edges as f64)),
        ("relabel_work", Json::Num(r.relabel_work as f64)),
        ("compactions", Json::Num(r.compactions as f64)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let mut out = "BENCH_merge.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" | "--check" => {}
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out = p.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        std::process::exit(2);
                    }
                }
            }
            bad => {
                eprintln!("unknown flag {bad:?}; use --quick, --check, --out <path>");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let n = if quick { 256 } else { 512 };
    // Three merge-heavy scenes. `noise` keeps every edge an exact tie for
    // long stretches (the reference backend's worst case: full re-sorts on a
    // barely-shrinking edge list); `rects` and `circles` mirror the paper's
    // object scenes at scale.
    let scenes: Vec<(&'static str, u32, GrayImage)> = vec![
        ("noise", 10, synth::uniform_noise(n, n, 120, 135, 7)),
        ("rects", 12, synth::random_rects(n, n, 40, 11)),
        ("circles", 10, synth::circle_collection(n)),
    ];
    let ties: [(TieBreak, &'static str); 2] = [
        (TieBreak::Random { seed: 1 }, "random"),
        (TieBreak::SmallestId, "smallest_id"),
    ];

    let mut rows = Vec::new();
    for (name, threshold, img) in &scenes {
        for &(tie, tie_name) in &ties {
            for backend in [MergeBackend::Csr, MergeBackend::Reference] {
                let row = bench_one(img, name, *threshold, tie, tie_name, backend);
                eprintln!(
                    "{:9} {:8} {:11} edges={:7} iters={:3} wall={:9.3}ms \
                     e/s={:12.0} peak={:7} work={:10} compactions={}",
                    row.backend.name(),
                    row.image,
                    row.tie_break,
                    row.initial_edges,
                    row.iterations,
                    row.wall_ms,
                    row.edges_per_sec,
                    row.peak_live_edges,
                    row.relabel_work,
                    row.compactions,
                );
                rows.push(row);
            }
        }
    }

    // Per-scene speedups (CSR over reference) and the relabel-work guard.
    let mut speedups = Vec::new();
    let mut guard_failures = Vec::new();
    let mut log_sum = 0.0f64;
    let mut log_n = 0u32;
    for (name, _, _) in &scenes {
        for &(_, tie_name) in &ties {
            let find = |b: MergeBackend| {
                rows.iter()
                    .find(|r| r.backend == b && r.image == *name && r.tie_break == tie_name)
                    .expect("row recorded")
            };
            let (csr, reference) = (find(MergeBackend::Csr), find(MergeBackend::Reference));
            let speedup = if reference.edges_per_sec > 0.0 {
                csr.edges_per_sec / reference.edges_per_sec
            } else {
                1.0
            };
            speedups.push((
                format!("{name}/{tie_name}"),
                Json::Num((speedup * 100.0).round() / 100.0),
            ));
            if speedup > 0.0 {
                log_sum += speedup.ln();
                log_n += 1;
            }
            if csr.relabel_work > reference.relabel_work {
                guard_failures.push(format!(
                    "{name}/{tie_name}: csr relabel_work {} > reference {}",
                    csr.relabel_work, reference.relabel_work
                ));
            }
        }
    }

    let doc = Json::obj(vec![
        ("schema", Json::Str("bench-merge-v1".to_string())),
        ("generator", Json::Str("bench_record".to_string())),
        ("image_size", Json::Num(f64::from(n as u32))),
        ("rows", Json::Arr(rows.iter().map(row_json).collect())),
        ("speedup_csr_over_reference", Json::Obj(speedups)),
        (
            "speedup_geomean",
            Json::Num(if log_n > 0 {
                ((log_sum / f64::from(log_n)).exp() * 100.0).round() / 100.0
            } else {
                1.0
            }),
        ),
    ]);
    std::fs::write(&out, doc.to_pretty() + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");

    if check && !guard_failures.is_empty() {
        for f in &guard_failures {
            eprintln!("PERF GUARD FAILED: {f}");
        }
        std::process::exit(1);
    }
    if check {
        eprintln!("perf guard OK: CSR relabel work <= reference on every scene");
    }
}
