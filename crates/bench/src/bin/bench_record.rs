//! Records the merge-stage benchmark trajectory to `BENCH_merge.json`.
//!
//! Runs the incremental CSR backend and the reference edge-list backend on
//! the same split results and records throughput (`edges_per_sec`), wall
//! time, iteration counts, live-edge peaks, and the machine-independent
//! `relabel_work` counter that the CI perf-smoke job guards on.
//!
//! ```text
//! cargo run --release -p rg-bench --bin bench_record                  # 512x512, write BENCH_merge.json
//! cargo run --release -p rg-bench --bin bench_record -- --quick      # 256x256 (CI smoke)
//! cargo run --release -p rg-bench --bin bench_record -- --check     # exit 1 if CSR does more relabel work
//! cargo run --release -p rg-bench --bin bench_record -- --out /tmp/b.json
//!
//! # batch-throughput smoke: warm pipeline vs naive per-image loop,
//! # recorded to BENCH_batch.json. --check enforces the speedup floor.
//! bench_record batch                                  # record BENCH_batch.json
//! bench_record batch --check --min-speedup 1.3        # exit 1 below the floor
//!
//! # split-stage suite: the packed word-parallel engine vs the retained
//! # scalar reference oracle, recorded to BENCH_split.json with wall time
//! # plus the machine-independent cells_touched / words_tested counters.
//! bench_record split                                  # 512x512, write BENCH_split.json
//! bench_record split --quick --check                  # 256x256 CI smoke + guards
//!
//! # tiled suite: the sharded runtime (rgrow --tiles 4x4) on one worker
//! # and on the pool vs a fresh whole-image run, recorded to
//! # BENCH_tiled.json. --check enforces identity guards + speedup floor.
//! bench_record tiles                                  # 2048x2048, write BENCH_tiled.json
//! bench_record tiles --quick --check                  # 512x512 smoke + guards
//!
//! # perf-regression diff (see rg_bench::diff). Exit 1 on regression.
//! bench_record diff old.json new.json                 # two recorded files
//! bench_record diff --baseline BENCH_merge.json       # fresh run vs baseline
//! bench_record diff new.json --baseline old.json --tolerance 0.15 --strict-wall
//! ```
//!
//! `edges_per_sec` is `initial_edges x iterations / wall_seconds`: the rate
//! at which the engine would traverse the *initial* edge set once per
//! iteration — exactly the work the reference backend actually does, so the
//! CSR backend's number directly exposes how much of that traversal the
//! incremental structure skips.

use std::time::Instant;

use rg_bench::diff::{diff_docs, DiffOptions};
use rg_core::graph::Rag;
use rg_core::json::Json;
use rg_core::{split, Config, MergeBackend, Merger, TieBreak};
use rg_imaging::{synth, GrayImage};

/// One benchmarked configuration.
struct Row {
    backend: MergeBackend,
    image: &'static str,
    tie_break: &'static str,
    threshold: u32,
    initial_edges: u64,
    iterations: u32,
    num_regions: usize,
    wall_ms: f64,
    edges_per_sec: f64,
    peak_live_edges: u64,
    relabel_work: u64,
    compactions: u64,
}

fn bench_one(
    img: &GrayImage,
    image_name: &'static str,
    threshold: u32,
    tie: TieBreak,
    tie_name: &'static str,
    backend: MergeBackend,
) -> Row {
    let cfg = Config {
        merge_backend: backend,
        ..Config::with_threshold(threshold).tie_break(tie)
    };
    let s = split(img, &cfg);
    let rag = Rag::from_split(&s, cfg.connectivity);
    let initial_edges = rag.num_edges() as u64;
    let stride = s.width as u32;
    let ids: Vec<u64> = s.squares.iter().map(|sq| sq.id(stride) as u64).collect();

    // Warm-up pass (page in buffers, steady-state allocator), then the
    // timed pass on a fresh Merger over the same RAG.
    let warm = Rag::from_split(&s, cfg.connectivity);
    Merger::new(warm, ids.clone(), &cfg, false).run();

    let mut merger = Merger::new(rag, ids, &cfg, false);
    let t0 = Instant::now();
    let summary = merger.run();
    let wall = t0.elapsed().as_secs_f64();

    let edges_per_sec = if wall > 0.0 {
        (initial_edges as f64) * f64::from(summary.iterations) / wall
    } else {
        0.0
    };
    Row {
        backend,
        image: image_name,
        tie_break: tie_name,
        threshold,
        initial_edges,
        iterations: summary.iterations,
        num_regions: summary.num_regions,
        wall_ms: wall * 1e3,
        edges_per_sec,
        peak_live_edges: merger.peak_active_edges(),
        relabel_work: merger.relabel_work(),
        compactions: merger.compactions(),
    }
}

fn row_json(r: &Row) -> Json {
    Json::obj(vec![
        ("backend", Json::Str(r.backend.name().to_string())),
        ("image", Json::Str(r.image.to_string())),
        ("tie_break", Json::Str(r.tie_break.to_string())),
        ("threshold", Json::Num(f64::from(r.threshold))),
        ("initial_edges", Json::Num(r.initial_edges as f64)),
        ("iterations", Json::Num(f64::from(r.iterations))),
        ("num_regions", Json::Num(r.num_regions as f64)),
        ("wall_ms", Json::Num((r.wall_ms * 1e3).round() / 1e3)),
        ("edges_per_sec", Json::Num(r.edges_per_sec.round())),
        ("peak_live_edges", Json::Num(r.peak_live_edges as f64)),
        ("relabel_work", Json::Num(r.relabel_work as f64)),
        ("compactions", Json::Num(r.compactions as f64)),
    ])
}

/// Runs the full scene × tie × backend suite at image size `n` and builds
/// the `bench-merge-v1` document plus any relabel-work guard failures.
fn build_doc(n: usize) -> (Json, Vec<String>) {
    // Three merge-heavy scenes. `noise` keeps every edge an exact tie for
    // long stretches (the reference backend's worst case: full re-sorts on a
    // barely-shrinking edge list); `rects` and `circles` mirror the paper's
    // object scenes at scale.
    let scenes: Vec<(&'static str, u32, GrayImage)> = vec![
        ("noise", 10, synth::uniform_noise(n, n, 120, 135, 7)),
        ("rects", 12, synth::random_rects(n, n, 40, 11)),
        ("circles", 10, synth::circle_collection(n)),
    ];
    let ties: [(TieBreak, &'static str); 2] = [
        (TieBreak::Random { seed: 1 }, "random"),
        (TieBreak::SmallestId, "smallest_id"),
    ];

    let mut rows = Vec::new();
    for (name, threshold, img) in &scenes {
        for &(tie, tie_name) in &ties {
            for backend in [MergeBackend::Csr, MergeBackend::Reference] {
                let row = bench_one(img, name, *threshold, tie, tie_name, backend);
                eprintln!(
                    "{:9} {:8} {:11} edges={:7} iters={:3} wall={:9.3}ms \
                     e/s={:12.0} peak={:7} work={:10} compactions={}",
                    row.backend.name(),
                    row.image,
                    row.tie_break,
                    row.initial_edges,
                    row.iterations,
                    row.wall_ms,
                    row.edges_per_sec,
                    row.peak_live_edges,
                    row.relabel_work,
                    row.compactions,
                );
                rows.push(row);
            }
        }
    }

    // Per-scene speedups (CSR over reference) and the relabel-work guard.
    let mut speedups = Vec::new();
    let mut guard_failures = Vec::new();
    let mut log_sum = 0.0f64;
    let mut log_n = 0u32;
    for (name, _, _) in &scenes {
        for &(_, tie_name) in &ties {
            let find = |b: MergeBackend| {
                rows.iter()
                    .find(|r| r.backend == b && r.image == *name && r.tie_break == tie_name)
                    .expect("row recorded")
            };
            let (csr, reference) = (find(MergeBackend::Csr), find(MergeBackend::Reference));
            let speedup = if reference.edges_per_sec > 0.0 {
                csr.edges_per_sec / reference.edges_per_sec
            } else {
                1.0
            };
            speedups.push((
                format!("{name}/{tie_name}"),
                Json::Num((speedup * 100.0).round() / 100.0),
            ));
            if speedup > 0.0 {
                log_sum += speedup.ln();
                log_n += 1;
            }
            if csr.relabel_work > reference.relabel_work {
                guard_failures.push(format!(
                    "{name}/{tie_name}: csr relabel_work {} > reference {}",
                    csr.relabel_work, reference.relabel_work
                ));
            }
        }
    }

    let doc = Json::obj(vec![
        ("schema", Json::Str("bench-merge-v1".to_string())),
        ("generator", Json::Str("bench_record".to_string())),
        ("image_size", Json::Num(f64::from(n as u32))),
        ("rows", Json::Arr(rows.iter().map(row_json).collect())),
        ("speedup_csr_over_reference", Json::Obj(speedups)),
        (
            "speedup_geomean",
            Json::Num(if log_n > 0 {
                ((log_sum / f64::from(log_n)).exp() * 100.0).round() / 100.0
            } else {
                1.0
            }),
        ),
    ]);
    (doc, guard_failures)
}

/// `bench_record [--quick] [--check] [--out PATH]` — record a document.
fn record_main(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let mut out = "BENCH_merge.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" | "--check" => {}
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out = p.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        std::process::exit(2);
                    }
                }
            }
            bad => {
                eprintln!("unknown flag {bad:?}; use --quick, --check, --out <path>, or the diff subcommand");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let n = if quick { 256 } else { 512 };
    let (doc, guard_failures) = build_doc(n);
    std::fs::write(&out, doc.to_pretty() + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");

    if check && !guard_failures.is_empty() {
        for f in &guard_failures {
            eprintln!("PERF GUARD FAILED: {f}");
        }
        std::process::exit(1);
    }
    if check {
        eprintln!("perf guard OK: CSR relabel work <= reference on every scene");
    }
}

/// One timed pass of the CI batch smoke (`bench_record batch`).
struct BatchRow {
    /// `"naive"` (fresh `segment()` per image) or `"batch"` (one warm
    /// [`HostPipeline`] streamed by `rg_core::batch`).
    backend: &'static str,
    images: usize,
    num_regions: usize,
    iterations: u64,
    wall_ms: f64,
    images_per_sec: f64,
}

fn batch_row_json(r: &BatchRow, scene: &str, threshold: u32) -> Json {
    Json::obj(vec![
        ("backend", Json::Str(r.backend.to_string())),
        ("image", Json::Str(format!("{scene}-stream"))),
        ("tie_break", Json::Str("random".to_string())),
        ("threshold", Json::Num(f64::from(threshold))),
        ("images", Json::Num(r.images as f64)),
        ("num_regions", Json::Num(r.num_regions as f64)),
        ("iterations", Json::Num(r.iterations as f64)),
        ("wall_ms", Json::Num((r.wall_ms * 1e3).round() / 1e3)),
        (
            "images_per_sec",
            Json::Num((r.images_per_sec * 10.0).round() / 10.0),
        ),
    ])
}

/// `bench_record batch [--out PATH] [--check] [--min-speedup F]
/// [--images N] [--size S]` — the batch-throughput smoke. Streams N
/// synthetic SxS scenes through one warm `HostPipeline` (the plan/workspace
/// reuse path) and through a naive fresh-`segment()`-per-image loop, and
/// records both as `bench-merge-v1` rows in `BENCH_batch.json` so the CI
/// diff gate guards the deterministic counters. `--check` additionally
/// enforces the warm pipeline's throughput floor over the naive loop.
fn batch_main(args: &[String]) {
    use rg_core::telemetry::Recorder;
    use rg_core::{run_batch, segment, BatchOptions, HostPipeline, NullTelemetry, Segmentation};

    let mut out = "BENCH_batch.json".to_string();
    let mut check = false;
    let mut min_speedup = 1.3f64;
    let mut images_n = 16usize;
    let mut size = 256usize;
    let mut scene = "speckle".to_string();
    fn take(args: &[String], i: &mut usize, what: &str) -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("{what} requires a value");
            std::process::exit(2);
        })
    }
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => check = true,
            "--out" => out = take(args, &mut i, "--out"),
            "--min-speedup" => {
                min_speedup = take(args, &mut i, "--min-speedup")
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("--min-speedup requires a number (e.g. 1.3)");
                        std::process::exit(2);
                    })
            }
            "--images" => {
                images_n = take(args, &mut i, "--images").parse().unwrap_or_else(|_| {
                    eprintln!("--images requires a count");
                    std::process::exit(2);
                })
            }
            "--size" => {
                size = take(args, &mut i, "--size").parse().unwrap_or_else(|_| {
                    eprintln!("--size requires a pixel count");
                    std::process::exit(2);
                })
            }
            "--scene" => scene = take(args, &mut i, "--scene"),
            bad => {
                eprintln!(
                    "unknown flag {bad:?}; usage: bench_record batch [--out PATH] [--check] \
                     [--min-speedup F] [--images N] [--size S] [--scene rects|nested|noise]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let threshold = 12u32;
    let cfg = Config::with_threshold(threshold).tie_break(TieBreak::Random { seed: 1 });
    let gen: fn(usize, u64) -> GrayImage = match scene.as_str() {
        "rects" => |n, s| synth::random_rects(n, n, 12, s),
        "nested" => |n, _| synth::nested_rects(n),
        "noise" => |n, s| synth::uniform_noise(n, n, 120, 135, s),
        // Worst-case fragmentation: high-contrast speckle keeps every
        // pixel its own region, so the vertex/edge/label arenas hit their
        // full bounds — the allocation load the batch runtime amortizes.
        "speckle" => |n, s| synth::uniform_noise(n, n, 0, 255, s),
        other => {
            eprintln!("unknown scene {other:?}; use rects, nested, noise, or speckle");
            std::process::exit(2);
        }
    };
    let imgs: Vec<GrayImage> = (0..images_n).map(|s| gen(size, s as u64)).collect();

    // Deterministic counters (identical for both paths by the workspace
    // bit-identity guarantee): total regions and total merge iterations.
    let (mut regions, mut iterations) = (0usize, 0u64);
    for img in &imgs {
        let mut rec = Recorder::new();
        let seg = rg_core::segment_with_telemetry(img, &cfg, &mut rec);
        regions += seg.num_regions;
        iterations += rec.report().merge_iterations.len() as u64;
    }

    // Three timed paths, interleaved over `repeats` rounds with the
    // best-of-k wall kept per path — single shots on shared CI boxes are
    // too noisy for a guarded floor. One untimed warm-up round first
    // (allocator free lists, page cache, thread spawn path).
    //
    // * naive: a fresh engine allocation per image (`segment()` loop);
    // * batch-seq: one warm sequential pipeline, plan + arenas reused
    //   across the stream, zero allocations per image (see
    //   tests/alloc_steady_state.rs);
    // * batch: the runtime as shipped (`rgrow --batch --jobs N`),
    //   per-worker warm pipelines fed from a shared queue.
    let jobs = std::thread::available_parallelism().map_or(1, |p| p.get().min(4));
    let repeats = 5;
    let naive_pass = |imgs: &[GrayImage]| {
        for img in imgs {
            std::hint::black_box(segment(img, &cfg));
        }
    };
    let mut pipe: HostPipeline<u8> = HostPipeline::new(cfg, false);
    let mut seg = Segmentation::default();
    let batch_pass = |imgs: &[GrayImage]| {
        let summary = run_batch(
            imgs,
            &BatchOptions::new().jobs(jobs),
            || Box::new(HostPipeline::<u8>::new(cfg, false)),
            &mut NullTelemetry,
            |_, _| {},
        );
        assert_eq!(summary.images, imgs.len(), "batch runtime dropped images");
    };

    naive_pass(&imgs);
    for img in &imgs {
        pipe.run_image_into(img, &mut NullTelemetry, &mut seg);
    }
    batch_pass(&imgs);

    let (mut naive_wall, mut seq_wall, mut batch_wall) = (f64::MAX, f64::MAX, f64::MAX);
    for _ in 0..repeats {
        let t0 = Instant::now();
        naive_pass(&imgs);
        naive_wall = naive_wall.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        for img in &imgs {
            pipe.run_image_into(img, &mut NullTelemetry, &mut seg);
            std::hint::black_box(&seg);
        }
        seq_wall = seq_wall.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        batch_pass(&imgs);
        batch_wall = batch_wall.min(t0.elapsed().as_secs_f64());
    }

    let row = |backend: &'static str, wall: f64| BatchRow {
        backend,
        images: images_n,
        num_regions: regions,
        iterations,
        wall_ms: wall * 1e3,
        images_per_sec: if wall > 0.0 {
            images_n as f64 / wall
        } else {
            0.0
        },
    };
    let naive = row("naive", naive_wall);
    let batch_seq = row("batch-seq", seq_wall);
    let batch = row("batch", batch_wall);
    let speedup_of = |wall: f64| {
        if naive_wall > 0.0 && wall > 0.0 {
            naive_wall / wall
        } else {
            1.0
        }
    };
    // The guarded number is the batch runtime's best configuration on this
    // host: warm-reuse alone on one core, plus worker fan-out where cores
    // exist.
    let (reuse_speedup, runtime_speedup) = (speedup_of(seq_wall), speedup_of(batch_wall));
    let speedup = reuse_speedup.max(runtime_speedup);
    for r in [&naive, &batch_seq, &batch] {
        eprintln!(
            "{:9} images={:3} regions={:7} iters={:4} wall={:9.3}ms {:8.1} img/s",
            r.backend, r.images, r.num_regions, r.iterations, r.wall_ms, r.images_per_sec,
        );
    }
    eprintln!(
        "speedup over naive: batch-seq (reuse only) {reuse_speedup:.2}x, \
         batch ({jobs} jobs) {runtime_speedup:.2}x"
    );

    let doc = Json::obj(vec![
        ("schema", Json::Str("bench-merge-v1".to_string())),
        ("generator", Json::Str("bench_record batch".to_string())),
        ("image_size", Json::Num(size as f64)),
        ("scene", Json::Str(scene.clone())),
        ("jobs", Json::Num(jobs as f64)),
        (
            "rows",
            Json::Arr(vec![
                batch_row_json(&naive, &scene, threshold),
                batch_row_json(&batch_seq, &scene, threshold),
                batch_row_json(&batch, &scene, threshold),
            ]),
        ),
        (
            "speedup_batch_over_naive",
            Json::Num((speedup * 100.0).round() / 100.0),
        ),
        (
            "speedup_reuse_over_naive",
            Json::Num((reuse_speedup * 100.0).round() / 100.0),
        ),
        (
            "speedup_runtime_over_naive",
            Json::Num((runtime_speedup * 100.0).round() / 100.0),
        ),
    ]);
    std::fs::write(&out, doc.to_pretty() + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");

    if check && speedup < min_speedup {
        eprintln!("BATCH GUARD FAILED: speedup {speedup:.2}x < floor {min_speedup:.2}x");
        std::process::exit(1);
    }
    if check {
        eprintln!("batch guard OK: {speedup:.2}x >= {min_speedup:.2}x");
    }
}

/// One timed configuration of the split-stage suite.
struct SplitRow {
    /// `"packed"` (the word-parallel engine) or `"reference"` (the
    /// retained scalar oracle, [`rg_core::split_reference`]).
    backend: &'static str,
    image: &'static str,
    /// Criterion name; stored in the `tie_break` column so the differ's
    /// `(backend, image, tie_break, threshold)` row key stays unique.
    criterion: &'static str,
    threshold: u32,
    iterations: u32,
    num_squares: usize,
    wall_ms: f64,
    cells_touched: u64,
    words_tested: u64,
}

fn split_row_json(r: &SplitRow) -> Json {
    Json::obj(vec![
        ("backend", Json::Str(r.backend.to_string())),
        ("image", Json::Str(r.image.to_string())),
        ("tie_break", Json::Str(r.criterion.to_string())),
        ("threshold", Json::Num(f64::from(r.threshold))),
        ("iterations", Json::Num(f64::from(r.iterations))),
        ("num_squares", Json::Num(r.num_squares as f64)),
        ("wall_ms", Json::Num((r.wall_ms * 1e3).round() / 1e3)),
        ("cells_touched", Json::Num(r.cells_touched as f64)),
        ("words_tested", Json::Num(r.words_tested as f64)),
    ])
}

/// Runs the split-stage scene × criterion suite at image size `n`: the
/// packed engine on its production path (warm reused scratch, sequential)
/// against the retained scalar reference, best-of-k wall per row plus the
/// machine-independent counters. Returns the `bench-split-v1` document and
/// any guard failures (bit-identity of outputs, packed counters never
/// exceeding the reference's).
fn build_split_doc(n: usize) -> (Json, Vec<String>) {
    use rg_core::{split_into, split_reference, Criterion, SplitResult, SplitScratch};

    // `nested` coalesces deep (many productive levels), `rects` is the
    // paper's object scene, `noise` goes unproductive immediately — the
    // case where tight grids + deferred folding pay the most.
    let scenes: Vec<(&'static str, u32, GrayImage)> = vec![
        ("nested", 10, synth::nested_rects(n)),
        ("rects", 12, synth::random_rects(n, n, 40, 11)),
        ("noise", 10, synth::uniform_noise(n, n, 120, 135, 7)),
    ];
    let criteria = [
        (Criterion::PixelRange, "range"),
        (Criterion::MeanDifference, "mean"),
    ];
    let repeats = 5;

    let mut rows = Vec::new();
    let mut guard_failures = Vec::new();
    let mut speedups = Vec::new();
    let mut log_sum = 0.0f64;
    let mut log_n = 0u32;
    let mut scratch = SplitScratch::new();
    let mut packed_out: SplitResult<u8> = SplitResult::default();

    for (name, threshold, img) in &scenes {
        for &(crit, crit_name) in &criteria {
            let cfg = Config::with_threshold(*threshold).criterion(crit);

            // Packed engine: one warm-up call, then best-of-k over the
            // steady-state (allocation-free) reused-scratch path.
            split_into(img, &cfg, false, &mut scratch, &mut packed_out);
            let mut packed_wall = f64::MAX;
            for _ in 0..repeats {
                let t0 = Instant::now();
                split_into(img, &cfg, false, &mut scratch, &mut packed_out);
                packed_wall = packed_wall.min(t0.elapsed().as_secs_f64());
            }
            let packed = SplitRow {
                backend: "packed",
                image: name,
                criterion: crit_name,
                threshold: *threshold,
                iterations: packed_out.iterations,
                num_squares: packed_out.squares.len(),
                wall_ms: packed_wall * 1e3,
                cells_touched: packed_out.metrics.cells_folded,
                words_tested: packed_out.metrics.words_tested,
            };

            // Reference oracle: allocates fresh per call by construction —
            // that cost is part of what the packed layout removes.
            let mut ref_out = split_reference(img, &cfg);
            let mut ref_wall = f64::MAX;
            for _ in 0..repeats {
                let t0 = Instant::now();
                ref_out = split_reference(img, &cfg);
                ref_wall = ref_wall.min(t0.elapsed().as_secs_f64());
            }
            let reference = SplitRow {
                backend: "reference",
                image: name,
                criterion: crit_name,
                threshold: *threshold,
                iterations: ref_out.iterations,
                num_squares: ref_out.squares.len(),
                wall_ms: ref_wall * 1e3,
                cells_touched: ref_out.metrics.cells_folded,
                words_tested: ref_out.metrics.words_tested,
            };

            if packed_out.squares != ref_out.squares
                || packed_out.stats != ref_out.stats
                || packed_out.square_of != ref_out.square_of
                || packed_out.iterations != ref_out.iterations
            {
                guard_failures.push(format!(
                    "{name}/{crit_name}: packed output differs from reference"
                ));
            }
            if packed.cells_touched > reference.cells_touched {
                guard_failures.push(format!(
                    "{name}/{crit_name}: packed cells_touched {} > reference {}",
                    packed.cells_touched, reference.cells_touched
                ));
            }
            if packed.words_tested > reference.words_tested {
                guard_failures.push(format!(
                    "{name}/{crit_name}: packed words_tested {} > reference {}",
                    packed.words_tested, reference.words_tested
                ));
            }

            let speedup = if packed_wall > 0.0 {
                ref_wall / packed_wall
            } else {
                1.0
            };
            speedups.push((
                format!("{name}/{crit_name}"),
                Json::Num((speedup * 100.0).round() / 100.0),
            ));
            if speedup > 0.0 {
                log_sum += speedup.ln();
                log_n += 1;
            }

            for r in [&packed, &reference] {
                eprintln!(
                    "{:9} {:8} {:6} iters={:2} squares={:7} wall={:9.3}ms \
                     cells={:10} words={:9}",
                    r.backend,
                    r.image,
                    r.criterion,
                    r.iterations,
                    r.num_squares,
                    r.wall_ms,
                    r.cells_touched,
                    r.words_tested,
                );
            }
            eprintln!(
                "{:9} {:8} {:6} speedup={:.2}x",
                "", name, crit_name, speedup
            );
            rows.push(packed);
            rows.push(reference);
        }
    }

    let doc = Json::obj(vec![
        ("schema", Json::Str("bench-split-v1".to_string())),
        ("generator", Json::Str("bench_record split".to_string())),
        ("image_size", Json::Num(n as f64)),
        ("rows", Json::Arr(rows.iter().map(split_row_json).collect())),
        ("speedup_packed_over_reference", Json::Obj(speedups)),
        (
            "speedup_geomean",
            Json::Num(if log_n > 0 {
                ((log_sum / f64::from(log_n)).exp() * 100.0).round() / 100.0
            } else {
                1.0
            }),
        ),
    ]);
    (doc, guard_failures)
}

/// `bench_record split [--quick] [--check] [--out PATH]` — record the
/// split-stage packed-vs-reference document (`BENCH_split.json`).
/// `--check` fails on any bit-identity or counter-domination guard.
fn split_main(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let mut out = "BENCH_split.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" | "--check" => {}
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out = p.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        std::process::exit(2);
                    }
                }
            }
            bad => {
                eprintln!("unknown flag {bad:?}; usage: bench_record split [--quick] [--check] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let n = if quick { 256 } else { 512 };
    let (doc, guard_failures) = build_split_doc(n);
    std::fs::write(&out, doc.to_pretty() + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");

    if check && !guard_failures.is_empty() {
        for f in &guard_failures {
            eprintln!("SPLIT GUARD FAILED: {f}");
        }
        std::process::exit(1);
    }
    if check {
        eprintln!(
            "split guard OK: packed output bit-identical and counters <= reference on every scene"
        );
    }
}

/// One timed configuration of the tiled suite.
struct TileRow {
    /// `"whole"` (one-shot `segment()` per image), `"tiled-j1"` (warm
    /// `TiledRunner`, one worker), or `"tiled-j4"` (warm runner, pooled
    /// workers).
    backend: &'static str,
    image: &'static str,
    threshold: u32,
    num_regions: usize,
    iterations: u32,
    seam_edges: Option<usize>,
    /// Guarded speedup (tiled-j4 row only): best of jobs-fan-out and
    /// tiled-over-whole on this host. A `speedup` work metric in the diff
    /// gate — losing it past the tolerance fails CI.
    speedup: Option<f64>,
    wall_ms: f64,
}

fn tile_row_json(r: &TileRow) -> Json {
    let mut fields = vec![
        ("backend", Json::Str(r.backend.to_string())),
        ("image", Json::Str(r.image.to_string())),
        ("tie_break", Json::Str("smallest".to_string())),
        ("threshold", Json::Num(f64::from(r.threshold))),
        ("num_regions", Json::Num(r.num_regions as f64)),
        ("iterations", Json::Num(f64::from(r.iterations))),
        ("wall_ms", Json::Num((r.wall_ms * 1e3).round() / 1e3)),
    ];
    if let Some(s) = r.seam_edges {
        fields.push(("seam_edges", Json::Num(s as f64)));
    }
    if let Some(s) = r.speedup {
        fields.push(("speedup", Json::Num((s * 100.0).round() / 100.0)));
    }
    Json::obj(fields)
}

/// Runs the tiled-vs-whole suite at image size `n`: the warm sharded
/// runtime (`rgrow --tiles 4x4`) on one worker and on the pool, against a
/// fresh `segment()` per round. Returns the `bench-tiles-v1` document and
/// any guard failures (worker-count invariance, and exact-label identity
/// with the whole-image run on the threshold-separated scene).
fn build_tiles_doc(n: usize) -> (Json, Vec<String>) {
    use rg_core::{segment, NullTelemetry, Segmentation, TileGrid, TiledRunner};

    let threshold = 10u32;
    let cfg = Config::with_threshold(threshold).tie_break(TieBreak::SmallestId);
    let grid = TileGrid::new(4, 4);
    let jobs = std::thread::available_parallelism().map_or(1, |p| p.get().min(4));
    let repeats = 3;
    // `shards`: flat cells pairwise separated by far more than T — the
    // scene family where the stitched partition provably equals the
    // whole-image run (exact-labels guard; DESIGN.md §17). `noise`:
    // narrow-band noise drives tens of merge iterations over a huge RAG —
    // the whole-image run churns cache-hostile full-image merge arenas
    // while each tile merges in cache, so sharding wins on a single core
    // and worker fan-out stacks on top where cores exist. The guarded
    // `speedup` metric lives on this scene's tiled-j4 row.
    let scenes: Vec<(&'static str, GrayImage)> = vec![
        ("shards", synth::checkerboard(n, (n / 16).max(1), 40, 200)),
        ("noise", synth::uniform_noise(n, n, 120, 135, 9)),
    ];

    let mut rows = Vec::new();
    let mut guard_failures = Vec::new();
    let mut best_j4_over_j1 = 0.0f64;
    let mut best_tiled_over_whole = 0.0f64;

    for (name, img) in &scenes {
        // Whole-image one-shot: fresh plan + arenas per call, what an
        // un-sharded caller pays per image. Warm-up round first.
        let mut whole_seg = segment(img, &cfg);
        let mut whole_wall = f64::MAX;
        for _ in 0..repeats {
            let t0 = Instant::now();
            whole_seg = segment(img, &cfg);
            whole_wall = whole_wall.min(t0.elapsed().as_secs_f64());
        }

        // Warm tiled runners: per-worker pipelines + stitch scratch
        // recycled across rounds, the steady-state sharded path.
        let time_tiled = |jobs: usize| {
            let mut runner = TiledRunner::new(cfg, false, grid, jobs);
            let mut seg = Segmentation::default();
            let mut stats = runner.run_into(img, &mut NullTelemetry, &mut seg);
            let mut wall = f64::MAX;
            for _ in 0..repeats {
                let t0 = Instant::now();
                stats = runner.run_into(img, &mut NullTelemetry, &mut seg);
                wall = wall.min(t0.elapsed().as_secs_f64());
            }
            (seg, stats, wall)
        };
        let (seg_j1, stats_j1, wall_j1) = time_tiled(1);
        let (seg_j4, stats_j4, wall_j4) = time_tiled(jobs);

        if seg_j1.labels != seg_j4.labels {
            guard_failures.push(format!("{name}: tiled output depends on worker count"));
        }
        if *name == "shards" && seg_j1.labels != whole_seg.labels {
            guard_failures.push(
                "shards: tiled labels differ from the whole-image run on a \
                 threshold-separated scene"
                    .to_string(),
            );
        }

        let j4_over_j1 = if wall_j4 > 0.0 {
            wall_j1 / wall_j4
        } else {
            1.0
        };
        let tiled_over_whole = if wall_j4 > 0.0 {
            whole_wall / wall_j4
        } else {
            1.0
        };
        best_j4_over_j1 = best_j4_over_j1.max(j4_over_j1);
        best_tiled_over_whole = best_tiled_over_whole.max(tiled_over_whole);
        let scene_speedup = j4_over_j1.max(tiled_over_whole);

        let whole = TileRow {
            backend: "whole",
            image: name,
            threshold,
            num_regions: whole_seg.num_regions,
            iterations: whole_seg.merge_iterations,
            seam_edges: None,
            speedup: None,
            wall_ms: whole_wall * 1e3,
        };
        let tiled_j1 = TileRow {
            backend: "tiled-j1",
            image: name,
            threshold,
            num_regions: seg_j1.num_regions,
            iterations: seg_j1.merge_iterations,
            seam_edges: Some(stats_j1.seam_edges),
            speedup: None,
            wall_ms: wall_j1 * 1e3,
        };
        let tiled_j4 = TileRow {
            backend: "tiled-j4",
            image: name,
            threshold,
            num_regions: seg_j4.num_regions,
            iterations: seg_j4.merge_iterations,
            seam_edges: Some(stats_j4.seam_edges),
            // Gate the speedup on the designated speedup scene only: the
            // flat `shards` scene runs near 1.0x by construction, and
            // gating a ~1.0 baseline would fail CI on ordinary wall noise.
            speedup: (*name == "noise").then_some(scene_speedup),
            wall_ms: wall_j4 * 1e3,
        };
        for r in [&whole, &tiled_j1, &tiled_j4] {
            eprintln!(
                "{:9} {:8} regions={:8} iters={:3} seam_edges={:7} wall={:10.3}ms",
                r.backend,
                r.image,
                r.num_regions,
                r.iterations,
                r.seam_edges.map_or("-".to_string(), |s| s.to_string()),
                r.wall_ms,
            );
        }
        eprintln!(
            "{:9} {:8} speedup: jobs{jobs}/jobs1 {j4_over_j1:.2}x, tiled/whole {tiled_over_whole:.2}x",
            "", name
        );
        rows.push(whole);
        rows.push(tiled_j1);
        rows.push(tiled_j4);
    }

    let speedup = best_j4_over_j1.max(best_tiled_over_whole);
    let doc = Json::obj(vec![
        ("schema", Json::Str("bench-tiles-v1".to_string())),
        ("generator", Json::Str("bench_record tiles".to_string())),
        ("image_size", Json::Num(n as f64)),
        ("grid", Json::Str(grid.to_string())),
        ("jobs", Json::Num(jobs as f64)),
        ("rows", Json::Arr(rows.iter().map(tile_row_json).collect())),
        (
            "speedup_jobs4_over_jobs1",
            Json::Num((best_j4_over_j1 * 100.0).round() / 100.0),
        ),
        (
            "speedup_tiled_over_whole",
            Json::Num((best_tiled_over_whole * 100.0).round() / 100.0),
        ),
        ("speedup", Json::Num((speedup * 100.0).round() / 100.0)),
    ]);
    (doc, guard_failures)
}

/// `bench_record tiles [--quick] [--check] [--min-speedup F] [--out PATH]
/// [--size N]` — record the tiled-vs-whole document (`BENCH_tiled.json`).
/// `--check` fails on any identity guard or a best-speedup below the
/// floor (1.4x by default).
fn tiles_main(args: &[String]) {
    let mut quick = false;
    let mut check = false;
    let mut min_speedup = 1.4f64;
    let mut out = "BENCH_tiled.json".to_string();
    let mut size: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out = p.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        std::process::exit(2);
                    }
                }
            }
            "--min-speedup" => {
                i += 1;
                min_speedup = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--min-speedup requires a number (e.g. 1.4)");
                    std::process::exit(2);
                });
            }
            "--size" => {
                i += 1;
                size = Some(args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--size requires a pixel count");
                    std::process::exit(2);
                }));
            }
            bad => {
                eprintln!(
                    "unknown flag {bad:?}; usage: bench_record tiles [--quick] [--check] \
                     [--min-speedup F] [--out PATH] [--size N]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let n = size.unwrap_or(if quick { 512 } else { 2048 });
    let (doc, guard_failures) = build_tiles_doc(n);
    let speedup = doc.get("speedup").and_then(Json::as_f64).unwrap_or(1.0);
    std::fs::write(&out, doc.to_pretty() + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");

    if check {
        for f in &guard_failures {
            eprintln!("TILES GUARD FAILED: {f}");
        }
        if speedup < min_speedup {
            eprintln!("TILES GUARD FAILED: best speedup {speedup:.2}x < floor {min_speedup:.2}x");
        }
        if !guard_failures.is_empty() || speedup < min_speedup {
            std::process::exit(1);
        }
        eprintln!(
            "tiles guard OK: worker-invariant, stitch-identical on the separated scene, \
             {speedup:.2}x >= {min_speedup:.2}x"
        );
    }
}

fn load_doc(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("{path}: not valid JSON: {e}");
        std::process::exit(1);
    })
}

/// `bench_record diff [current.json] [baseline.json] [--baseline PATH]
/// [--tolerance F] [--strict-wall]` — compare two recorded documents, or a
/// fresh run against a committed baseline when only `--baseline` is given.
/// Exits 1 on regression, 0 otherwise (the CI perf-smoke contract).
fn diff_main(args: &[String]) {
    let mut baseline: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut opts = DiffOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                i += 1;
                baseline = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--baseline requires a path");
                    std::process::exit(2);
                }));
            }
            "--tolerance" => {
                i += 1;
                opts.tolerance = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--tolerance requires a number (e.g. 0.15)");
                    std::process::exit(2);
                });
            }
            "--strict-wall" => opts.strict_wall = true,
            bad if bad.starts_with('-') => {
                eprintln!(
                    "unknown flag {bad:?}; usage: bench_record diff [baseline.json current.json] \
                     [--baseline PATH] [--tolerance F] [--strict-wall]"
                );
                std::process::exit(2);
            }
            p => positional.push(p.to_string()),
        }
        i += 1;
    }

    // Resolve (baseline, current): explicit --baseline beats positionals;
    // with no current document we run the suite fresh at the baseline's
    // recorded image size.
    let (base_doc, base_name, cur_doc, cur_name) = match (baseline, positional.as_slice()) {
        (Some(b), [cur]) => (load_doc(&b), b, load_doc(cur), cur.clone()),
        (Some(b), []) => {
            let base = load_doc(&b);
            let n = base.get("image_size").and_then(Json::as_u64).unwrap_or(256) as usize;
            // The baseline's generator field picks the suite to rerun, so
            // one diff gate serves both the merge and split documents.
            let generator = base
                .get("generator")
                .and_then(Json::as_str)
                .unwrap_or("bench_record")
                .to_string();
            eprintln!("running fresh {n}x{n} `{generator}` suite against baseline {b}...");
            let (doc, _) = match generator.as_str() {
                "bench_record split" => build_split_doc(n),
                "bench_record tiles" => build_tiles_doc(n),
                _ => build_doc(n),
            };
            (base, b, doc, "<fresh run>".to_string())
        }
        (None, [b, cur]) => (load_doc(b), b.clone(), load_doc(cur), cur.clone()),
        _ => {
            eprintln!(
                "usage: bench_record diff <baseline.json> <current.json>\n\
                 \x20      bench_record diff [current.json] --baseline <baseline.json>\n\
                 \x20      [--tolerance F] [--strict-wall]"
            );
            std::process::exit(2);
        }
    };

    let report = diff_docs(&base_doc, &cur_doc, &opts).unwrap_or_else(|e| {
        eprintln!("diff failed: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "diff: {base_name} (baseline) vs {cur_name} (tolerance {:.0}%{})",
        opts.tolerance * 100.0,
        if opts.strict_wall {
            ", strict wall"
        } else {
            ""
        }
    );
    print!("{}", report.render());
    if !report.ok() {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("diff") => diff_main(&args[1..]),
        Some("batch") => batch_main(&args[1..]),
        Some("split") => split_main(&args[1..]),
        Some("tiles") => tiles_main(&args[1..]),
        _ => record_main(&args),
    }
}
