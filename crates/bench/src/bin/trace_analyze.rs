//! `trace_analyze` — post-mortem causal analysis of a traced journal.
//!
//! Reads a JSONL event journal (written by `rgrow --trace-out` with the
//! message-passing engine), reconstructs the cross-rank message DAG from
//! its flow events, and reports the critical path, per-rank busy/idle
//! timelines, load imbalance, straggler ranks, per-edge wait attribution,
//! and communication/computation overlap.
//!
//! ```text
//! trace_analyze <journal.jsonl|-> [--json PATH|-] [--bench PATH] [--strict]
//!
//!   <journal.jsonl|->   input journal; `-` reads from stdin
//!   --json PATH|-       also write the analysis as JSON (`-` = stdout,
//!                       suppressing the human report)
//!   --bench PATH        also write a `bench-merge-v1` document whose rows
//!                       carry `critical_path_us` / `imbalance_pct`, so
//!                       `bench_record diff` can gate on them
//!   --strict            fail on the first malformed journal line instead
//!                       of tolerating a truncated tail
//! ```
//!
//! Exit status: 0 on success; 1 when the journal cannot be read, holds no
//! flow events at all, or any run violates the analyzer's structural
//! invariants (critical path ≤ wall time and ≥ max per-rank busy time).
//! Truncated journals still analyze — unmatched receives are reported and
//! simply lose their cross-rank edge.

use rg_core::json::Json;
use rg_core::{analyze_run, parse_journal, parse_journal_strict, split_runs, Event, EventKind};
use std::io::Read;
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: trace_analyze <journal.jsonl|-> [--json PATH|-] [--bench PATH] [--strict]");
    exit(2)
}

/// Pulls the `(tie_break, threshold)` row key fields from a run's
/// `run_start`, if it survived in the journal.
fn run_config(run: &[Event]) -> (String, f64) {
    for ev in run {
        if let EventKind::RunStart { config, .. } = &ev.kind {
            return (config.tie_break.clone(), f64::from(config.threshold));
        }
    }
    ("unknown".to_string(), 0.0)
}

fn main() {
    let mut input: Option<String> = None;
    let mut json_out: Option<String> = None;
    let mut bench_out: Option<String> = None;
    let mut strict = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => {
                json_out = Some(args.next().unwrap_or_else(|| {
                    eprintln!("missing value for {a}");
                    usage()
                }))
            }
            "--bench" => {
                bench_out = Some(args.next().unwrap_or_else(|| {
                    eprintln!("missing value for {a}");
                    usage()
                }))
            }
            "--strict" => strict = true,
            "--help" | "-h" => usage(),
            "-" => input = Some(a),
            _ if a.starts_with('-') => {
                eprintln!("unknown flag {a}");
                usage()
            }
            _ if input.is_none() => input = Some(a),
            _ => usage(),
        }
    }
    let path = input.unwrap_or_else(|| usage());
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .unwrap_or_else(|e| {
                eprintln!("cannot read stdin: {e}");
                exit(1)
            });
        buf
    } else {
        std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1)
        })
    };

    let events: Vec<Event> = if strict {
        match parse_journal_strict(&text) {
            Ok(ev) => ev,
            Err((line, msg)) => {
                eprintln!("{path}:{line}: malformed journal line: {msg}");
                exit(1)
            }
        }
    } else {
        let (events, stats) = parse_journal(&text);
        if stats.truncated {
            eprintln!(
                "note: journal truncated after {} event(s): {}",
                stats.events,
                stats.error.as_deref().unwrap_or("unparseable line")
            );
        }
        events
    };

    let runs = split_runs(&events);
    let mut analyses = Vec::new();
    let mut rows = Vec::new();
    let mut bad = 0usize;
    for run in &runs {
        let Some(a) = analyze_run(run) else { continue };
        // The two invariants the clamped DP guarantees on well-formed
        // traces; a violation means the journal is lying about causality.
        if a.critical_path_ns > a.wall_ns + 1e-6 {
            eprintln!(
                "INVARIANT VIOLATION: critical path {} ns exceeds wall {} ns",
                a.critical_path_ns, a.wall_ns
            );
            bad += 1;
        }
        if a.critical_path_ns + 1e-6 < a.max_busy_ns() {
            eprintln!(
                "INVARIANT VIOLATION: critical path {} ns below max rank busy {} ns",
                a.critical_path_ns,
                a.max_busy_ns()
            );
            bad += 1;
        }
        let (tie_break, threshold) = run_config(run);
        rows.push(Json::obj(vec![
            ("backend", a.engine.as_str().into()),
            ("image", format!("{}x{}", a.width, a.height).into()),
            ("tie_break", tie_break.into()),
            ("threshold", threshold.into()),
            ("critical_path_us", (a.critical_path_ns / 1000.0).into()),
            ("imbalance_pct", a.imbalance_pct.into()),
            ("utilization_pct", a.utilization_pct().into()),
            ("wall_us", (a.wall_ns / 1000.0).into()),
        ]));
        analyses.push(a);
    }

    if analyses.is_empty() {
        eprintln!(
            "{path}: no flow events in any of {} run(s) — trace with the \
             message-passing engine (rgrow --engine msgpass --trace-out ...)",
            runs.len()
        );
        exit(1);
    }

    let json_doc = Json::obj(vec![
        ("schema", "trace-analyze-v1".into()),
        (
            "runs",
            Json::Arr(analyses.iter().map(|a| a.to_json()).collect()),
        ),
    ]);
    let mut quiet = false;
    if let Some(out) = &json_out {
        if out == "-" {
            println!("{}", json_doc.to_pretty());
            quiet = true;
        } else {
            std::fs::write(out, json_doc.to_pretty()).unwrap_or_else(|e| {
                eprintln!("cannot write {out}: {e}");
                exit(1)
            });
        }
    }
    if let Some(out) = &bench_out {
        let doc = Json::obj(vec![
            ("schema", "bench-merge-v1".into()),
            ("rows", Json::Arr(rows)),
        ]);
        std::fs::write(out, doc.to_pretty()).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            exit(1)
        });
    }
    if !quiet {
        for a in &analyses {
            print!("{}", a.render());
        }
    }
    exit(if bad > 0 { 1 } else { 0 });
}
