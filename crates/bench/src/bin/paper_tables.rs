//! Regenerates the paper's six per-image result tables (and the tie-break
//! ablation) side by side with the published numbers.
//!
//! ```text
//! cargo run --release -p rg-bench --bin paper_tables          # all six
//! cargo run --release -p rg-bench --bin paper_tables -- 3     # image 3
//! cargo run --release -p rg-bench --bin paper_tables -- ablation
//! cargo run --release -p rg-bench --bin paper_tables -- costs   # primitive breakdown
//! ```

use rg_bench::ablation::{format_ablation, run_ablation};
use rg_bench::tables::{format_table, paper_config, run_all_platforms};
use rg_imaging::synth::PaperImage;

fn image_by_number(n: usize) -> Option<PaperImage> {
    PaperImage::ALL.get(n.checked_sub(1)?).copied()
}

fn main() {
    let arg = std::env::args().nth(1);
    match arg.as_deref() {
        Some("costs") => costs_breakdown(),
        Some("ablation") => {
            println!("== Resolving Ties at Random (paper's ablation claim) ==\n");
            for pi in PaperImage::ALL {
                let cfg = paper_config(pi.size());
                let rows = run_ablation(pi, &cfg, &[1, 2, 3, 4, 5]);
                println!("{}", format_ablation(pi, &rows));
                let rand = &rows[0];
                let small = &rows[1];
                println!(
                    "  -> random needs {} iters vs {} for smallest-ID ({})\n",
                    rand.merge_iterations,
                    small.merge_iterations,
                    if rand.merge_iterations <= small.merge_iterations {
                        "random wins or ties, as the paper reports"
                    } else {
                        "UNEXPECTED: random lost"
                    }
                );
            }
        }
        Some(n) => {
            let n: usize = n.parse().unwrap_or_else(|_| {
                eprintln!("usage: paper_tables [1-6|ablation]");
                std::process::exit(2);
            });
            let pi = image_by_number(n).unwrap_or_else(|| {
                eprintln!("image number must be 1-6");
                std::process::exit(2);
            });
            run_one(pi, n);
        }
        None => {
            for (i, pi) in PaperImage::ALL.into_iter().enumerate() {
                run_one(pi, i + 1);
            }
        }
    }
}

/// Per-primitive cost breakdown on the CM-2 — the empirical counterpart of
/// the paper's complexity section (split: elementwise + NEWS; merge:
/// router-dominated). The breakdown is read entirely from the telemetry
/// report's `<stage>.<prim>.ops` / `.seconds` counters, the same ones a
/// `--telemetry` JSON dump contains.
fn costs_breakdown() {
    use cm_sim::{CostModel, ALL_PRIMS};
    use rg_core::{Recorder, Stage};
    use rg_datapar::segment_datapar_with_telemetry;
    let pi = PaperImage::Image1;
    let img = pi.generate();
    let cfg = paper_config(pi.size());
    for model in [CostModel::cm2_8k(), CostModel::cm5_dp_32()] {
        let mut rec = Recorder::new();
        segment_datapar_with_telemetry(&img, &cfg, model, &mut rec);
        let report = rec.into_report();
        println!("== {} on {} ==", pi.description(), report.engine);
        for stage in [Stage::Split, Stage::Graph, Stage::Merge] {
            let total = report.stage_seconds(stage).unwrap_or(0.0);
            println!("  {} stage: {total:.3}s total", stage.name());
            for prim in ALL_PRIMS {
                let name = format!("{prim:?}").to_lowercase();
                let key = format!("{}.{name}", stage.name());
                let Some(ops) = report.counter(&format!("{key}.ops")) else {
                    continue;
                };
                let secs = report.counter(&format!("{key}.seconds")).unwrap_or(0.0);
                println!(
                    "    {:<12} {:>6} ops {:>9.3}s ({:>4.1}%)",
                    format!("{prim:?}"),
                    ops as u64,
                    secs,
                    100.0 * secs / total
                );
            }
        }
        println!();
    }
}

fn run_one(pi: PaperImage, n: usize) {
    println!("== Image {n}: measured vs paper ==");
    let rows = run_all_platforms(pi);
    println!("{}", format_table(pi, &rows));
}
