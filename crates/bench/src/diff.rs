//! Perf-regression differ for `BENCH_*.json` documents.
//!
//! Compares a *current* benchmark document against a *baseline* (both in
//! a `bench_record` schema: `bench-merge-v1`, `bench-split-v1`, or
//! `bench-tiles-v1` — historical split files stamped with the merge tag
//! are still accepted, with a warning) and classifies every metric of
//! every row:
//!
//! * **identity metrics** (`initial_edges`, `num_regions`, `num_squares`)
//!   are products of the deterministic pipeline — any change at all is a
//!   regression (it means the segmentation itself drifted, not just its
//!   cost);
//! * **work metrics** (`iterations`, `peak_live_edges`, `relabel_work`,
//!   `compactions`, `cells_touched`, `words_tested`) are
//!   machine-independent operation counts — the diff
//!   fails when `current > baseline * (1 + tolerance)`; getting *better*
//!   is reported but never fatal;
//! * **noise metrics** (`wall_ms`, `edges_per_sec`) depend on the host —
//!   they are compared with the same tolerance but only *warn* by
//!   default, since CI machines are noisy; [`DiffOptions::strict_wall`]
//!   promotes wall-time regressions to failures for quiet hardware.
//!
//! Rows are matched by `(backend, image, tie_break, threshold)`. A row
//! present in the baseline but missing from the current document is a
//! regression (coverage loss); a new row is informational.

use rg_core::json::Json;
use std::fmt::Write as _;

/// Metrics whose values must match the baseline exactly.
pub const IDENTITY_METRICS: &[&str] = &["initial_edges", "num_regions", "num_squares"];
/// Machine-independent work counters guarded with the tolerance.
/// `critical_path_us` and `imbalance_pct` come from `trace_analyze
/// --bench` rows: both derive from the simulator's deterministic virtual
/// clock, so they gate like operation counts, not like wall time.
pub const WORK_METRICS: &[&str] = &[
    "iterations",
    "peak_live_edges",
    "relabel_work",
    "compactions",
    "cells_touched",
    "words_tested",
    "critical_path_us",
    "imbalance_pct",
    "speedup",
];
/// Host-dependent metrics that warn rather than fail (unless
/// [`DiffOptions::strict_wall`]). For `edges_per_sec`, *lower* is worse.
pub const NOISE_METRICS: &[&str] = &["wall_ms", "edges_per_sec"];
/// Metrics where *lower* is the regression direction (throughputs and
/// speedups); everything else regresses upward.
const DOWNWARD_METRICS: &[&str] = &["edges_per_sec", "speedup"];

/// Knobs for [`diff_docs`].
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Allowed fractional growth of work metrics (0.15 = +15 %).
    pub tolerance: f64,
    /// Treat wall-time / throughput regressions as failures, not warnings.
    pub strict_wall: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            tolerance: 0.15,
            strict_wall: false,
        }
    }
}

/// Severity of one finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Within tolerance (or an improvement).
    Ok,
    /// Host-dependent drift beyond tolerance — reported, exit 0.
    Warning,
    /// Work-counter / identity drift beyond tolerance — exit 1.
    Regression,
}

/// One metric comparison in one row.
#[derive(Debug, Clone)]
pub struct Finding {
    /// `backend/image/tie_break` key of the row.
    pub row: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub base: f64,
    /// Current value.
    pub cur: f64,
    /// Fractional change (`cur / base - 1`), `0.0` when `base == 0`.
    pub delta: f64,
    /// Classification under the supplied [`DiffOptions`].
    pub severity: Severity,
}

/// Everything [`diff_docs`] concluded.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Per-metric findings, in document order.
    pub findings: Vec<Finding>,
    /// Rows in the baseline that the current document lacks.
    pub missing_rows: Vec<String>,
    /// Rows in the current document the baseline lacks (informational).
    pub new_rows: Vec<String>,
    /// Non-fatal schema notes (e.g. a split document still stamped with
    /// the legacy `bench-merge-v1` tag).
    pub schema_warnings: Vec<String>,
}

impl DiffReport {
    /// `true` when nothing crossed the failure threshold.
    pub fn ok(&self) -> bool {
        self.missing_rows.is_empty()
            && self
                .findings
                .iter()
                .all(|f| f.severity != Severity::Regression)
    }

    /// Count of findings at the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Renders an aligned table of all non-`Ok` findings (plus a summary
    /// line), the format the CLI prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let shown: Vec<&Finding> = self
            .findings
            .iter()
            .filter(|f| f.severity != Severity::Ok)
            .collect();
        if !shown.is_empty() {
            let _ = writeln!(
                out,
                "{:<28} {:<16} {:>14} {:>14} {:>9}  status",
                "row", "metric", "baseline", "current", "delta"
            );
            for f in &shown {
                let _ = writeln!(
                    out,
                    "{:<28} {:<16} {:>14} {:>14} {:>8.1}%  {}",
                    f.row,
                    f.metric,
                    fmt_num(f.base),
                    fmt_num(f.cur),
                    f.delta * 100.0,
                    match f.severity {
                        Severity::Regression => "REGRESSED",
                        Severity::Warning => "warn",
                        Severity::Ok => "ok",
                    }
                );
            }
        }
        for row in &self.missing_rows {
            let _ = writeln!(out, "MISSING ROW: {row} (present in baseline)");
        }
        for row in &self.new_rows {
            let _ = writeln!(out, "new row: {row} (not in baseline)");
        }
        for w in &self.schema_warnings {
            let _ = writeln!(out, "schema warning: {w}");
        }
        let _ = writeln!(
            out,
            "{} metric(s) compared, {} regression(s), {} warning(s){}",
            self.findings.len(),
            self.count(Severity::Regression) + self.missing_rows.len(),
            self.count(Severity::Warning),
            if self.ok() { " — OK" } else { "" }
        );
        out
    }
}

fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

fn row_key(row: &Json) -> Option<String> {
    let backend = row.get("backend")?.as_str()?;
    let image = row.get("image")?.as_str()?;
    let tie = row.get("tie_break")?.as_str()?;
    let threshold = row.get("threshold")?.as_f64()?;
    Some(format!("{backend}/{image}/{tie}/t{threshold}"))
}

/// Validates the schema tag; returns a warning string for accepted legacy
/// stampings (split documents written before `bench-split-v1` existed).
fn check_schema(doc: &Json, which: &str) -> Result<Option<String>, String> {
    let generator = doc.get("generator").and_then(Json::as_str).unwrap_or("");
    match doc.get("schema").and_then(Json::as_str) {
        Some("bench-merge-v1") if generator == "bench_record split" => Ok(Some(format!(
            "{which}: split document stamped with legacy schema \"bench-merge-v1\" \
             (regenerate with `bench_record split` for \"bench-split-v1\")"
        ))),
        Some("bench-merge-v1" | "bench-split-v1" | "bench-tiles-v1") => Ok(None),
        Some(other) => Err(format!("{which}: unsupported schema {other:?}")),
        None => Err(format!("{which}: missing schema field")),
    }
}

fn rows_of<'j>(doc: &'j Json, which: &str) -> Result<Vec<(String, &'j Json)>, String> {
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{which}: missing rows array"))?;
    rows.iter()
        .map(|r| {
            row_key(r)
                .map(|k| (k, r))
                .ok_or_else(|| format!("{which}: row missing backend/image/tie_break/threshold"))
        })
        .collect()
}

/// Classify one metric of one row.
fn classify(metric: &str, base: f64, cur: f64, opts: &DiffOptions) -> Severity {
    if IDENTITY_METRICS.contains(&metric) {
        return if base == cur {
            Severity::Ok
        } else {
            Severity::Regression
        };
    }
    // Throughput/speedup metrics regress downward; everything else upward.
    let worse = if DOWNWARD_METRICS.contains(&metric) {
        base > 0.0 && cur < base * (1.0 - opts.tolerance)
    } else {
        cur > base * (1.0 + opts.tolerance) + f64::EPSILON
    };
    if !worse {
        Severity::Ok
    } else if NOISE_METRICS.contains(&metric) && !opts.strict_wall {
        Severity::Warning
    } else {
        Severity::Regression
    }
}

/// Diffs two `bench-merge-v1` documents. Errors on schema/shape problems;
/// regressions are reported through the returned [`DiffReport`], not as
/// `Err`.
pub fn diff_docs(
    baseline: &Json,
    current: &Json,
    opts: &DiffOptions,
) -> Result<DiffReport, String> {
    let mut report = DiffReport::default();
    report
        .schema_warnings
        .extend(check_schema(baseline, "baseline")?);
    report
        .schema_warnings
        .extend(check_schema(current, "current")?);
    let base_rows = rows_of(baseline, "baseline")?;
    let cur_rows = rows_of(current, "current")?;
    for (key, brow) in &base_rows {
        let Some((_, crow)) = cur_rows.iter().find(|(k, _)| k == key) else {
            report.missing_rows.push(key.clone());
            continue;
        };
        for &metric in IDENTITY_METRICS
            .iter()
            .chain(WORK_METRICS)
            .chain(NOISE_METRICS)
        {
            let (Some(base), Some(cur)) = (
                brow.get(metric).and_then(Json::as_f64),
                crow.get(metric).and_then(Json::as_f64),
            ) else {
                // A metric absent on either side is simply not compared —
                // lets the schema grow columns without breaking old files.
                continue;
            };
            let delta = if base != 0.0 { cur / base - 1.0 } else { 0.0 };
            report.findings.push(Finding {
                row: key.clone(),
                metric: metric.to_string(),
                base,
                cur,
                delta,
                severity: classify(metric, base, cur, opts),
            });
        }
    }
    for (key, _) in &cur_rows {
        if !base_rows.iter().any(|(k, _)| k == key) {
            report.new_rows.push(key.clone());
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(relabel_work: f64, wall_ms: f64, num_regions: f64) -> Json {
        Json::obj(vec![
            ("schema", "bench-merge-v1".into()),
            (
                "rows",
                Json::Arr(vec![Json::obj(vec![
                    ("backend", "csr".into()),
                    ("image", "noise".into()),
                    ("tie_break", "random".into()),
                    ("threshold", 10.0.into()),
                    ("initial_edges", 1000.0.into()),
                    ("iterations", 20.0.into()),
                    ("num_regions", num_regions.into()),
                    ("wall_ms", wall_ms.into()),
                    ("edges_per_sec", 1e6.into()),
                    ("peak_live_edges", 900.0.into()),
                    ("relabel_work", relabel_work.into()),
                    ("compactions", 3.0.into()),
                ])]),
            ),
        ])
    }

    #[test]
    fn self_diff_is_clean() {
        let d = doc(5000.0, 12.0, 40.0);
        let r = diff_docs(&d, &d, &DiffOptions::default()).unwrap();
        assert!(r.ok(), "{}", r.render());
        assert_eq!(r.count(Severity::Regression), 0);
        assert_eq!(r.count(Severity::Warning), 0);
        assert!(r.missing_rows.is_empty() && r.new_rows.is_empty());
    }

    #[test]
    fn perturbed_work_counter_regresses() {
        let base = doc(5000.0, 12.0, 40.0);
        let cur = doc(5000.0 * 1.3, 12.0, 40.0); // +30 % > 15 % tolerance
        let r = diff_docs(&base, &cur, &DiffOptions::default()).unwrap();
        assert!(!r.ok());
        let bad: Vec<&Finding> = r
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Regression)
            .collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].metric, "relabel_work");
        assert!(r.render().contains("REGRESSED"));
    }

    /// Rows written by `trace_analyze --bench` gate on the causal metrics:
    /// a critical-path or imbalance regression past the tolerance fails,
    /// and an improvement never does.
    #[test]
    fn trace_analyze_rows_gate_on_causal_metrics() {
        let trace_doc = |critical_path_us: f64, imbalance_pct: f64| {
            Json::obj(vec![
                ("schema", "bench-merge-v1".into()),
                (
                    "rows",
                    Json::Arr(vec![Json::obj(vec![
                        ("backend", "msgpass:async:4".into()),
                        ("image", "128x128".into()),
                        ("tie_break", "random".into()),
                        ("threshold", 10.0.into()),
                        ("critical_path_us", critical_path_us.into()),
                        ("imbalance_pct", imbalance_pct.into()),
                        ("utilization_pct", 80.0.into()),
                        ("wall_us", 45_000.0.into()),
                    ])]),
                ),
            ])
        };
        let base = trace_doc(40_000.0, 8.0);
        let r = diff_docs(
            &base,
            &trace_doc(40_000.0 * 1.3, 8.0),
            &DiffOptions::default(),
        )
        .unwrap();
        assert!(!r.ok());
        assert!(r
            .findings
            .iter()
            .any(|f| f.severity == Severity::Regression && f.metric == "critical_path_us"));
        let r = diff_docs(
            &base,
            &trace_doc(40_000.0, 8.0 * 1.5),
            &DiffOptions::default(),
        )
        .unwrap();
        assert!(!r.ok());
        assert!(r
            .findings
            .iter()
            .any(|f| f.severity == Severity::Regression && f.metric == "imbalance_pct"));
        // A faster, better-balanced run sails through.
        let r = diff_docs(&base, &trace_doc(30_000.0, 2.0), &DiffOptions::default()).unwrap();
        assert!(r.ok(), "{}", r.render());
    }

    #[test]
    fn tolerance_absorbs_small_growth_and_any_improvement() {
        let base = doc(5000.0, 12.0, 40.0);
        let within = doc(5000.0 * 1.10, 12.0, 40.0);
        assert!(diff_docs(&base, &within, &DiffOptions::default())
            .unwrap()
            .ok());
        let better = doc(2500.0, 6.0, 40.0);
        assert!(diff_docs(&base, &better, &DiffOptions::default())
            .unwrap()
            .ok());
        // Tighter tolerance flips the +10 % case.
        let tight = DiffOptions {
            tolerance: 0.05,
            ..DiffOptions::default()
        };
        assert!(!diff_docs(&base, &within, &tight).unwrap().ok());
    }

    #[test]
    fn identity_metric_change_always_fails() {
        let base = doc(5000.0, 12.0, 40.0);
        let cur = doc(5000.0, 12.0, 41.0); // one extra region
        let r = diff_docs(&base, &cur, &DiffOptions::default()).unwrap();
        assert!(!r.ok());
        assert!(r
            .findings
            .iter()
            .any(|f| f.metric == "num_regions" && f.severity == Severity::Regression));
    }

    #[test]
    fn wall_time_noise_warns_unless_strict() {
        let base = doc(5000.0, 12.0, 40.0);
        let slow = doc(5000.0, 30.0, 40.0); // 2.5x slower
        let r = diff_docs(&base, &slow, &DiffOptions::default()).unwrap();
        assert!(r.ok(), "wall noise must not fail by default");
        assert_eq!(r.count(Severity::Warning), 1);
        let strict = DiffOptions {
            strict_wall: true,
            ..DiffOptions::default()
        };
        assert!(!diff_docs(&base, &slow, &strict).unwrap().ok());
    }

    #[test]
    fn missing_row_fails_new_row_informs() {
        let base = doc(5000.0, 12.0, 40.0);
        let empty = Json::obj(vec![
            ("schema", "bench-merge-v1".into()),
            ("rows", Json::Arr(vec![])),
        ]);
        let r = diff_docs(&base, &empty, &DiffOptions::default()).unwrap();
        assert!(!r.ok());
        assert_eq!(r.missing_rows.len(), 1);
        let r2 = diff_docs(&empty, &base, &DiffOptions::default()).unwrap();
        assert!(r2.ok());
        assert_eq!(r2.new_rows.len(), 1);
    }

    #[test]
    fn split_row_metrics_are_guarded() {
        // `bench_record split` rows carry `cells_touched`/`words_tested`
        // (work) and `num_squares` (identity); merge rows simply lack them
        // and are skipped — the schema grows without breaking old files.
        let split_doc = |cells: f64, squares: f64| {
            Json::obj(vec![
                ("schema", "bench-merge-v1".into()),
                (
                    "rows",
                    Json::Arr(vec![Json::obj(vec![
                        ("backend", "packed".into()),
                        ("image", "nested".into()),
                        ("tie_break", "range".into()),
                        ("threshold", 10.0.into()),
                        ("iterations", 6.0.into()),
                        ("num_squares", squares.into()),
                        ("wall_ms", 3.0.into()),
                        ("cells_touched", cells.into()),
                        ("words_tested", 5000.0.into()),
                    ])]),
                ),
            ])
        };
        let base = split_doc(100_000.0, 400.0);
        assert!(diff_docs(&base, &base, &DiffOptions::default())
            .unwrap()
            .ok());
        // +30 % cells_touched is a work regression.
        let slow = split_doc(130_000.0, 400.0);
        let r = diff_docs(&base, &slow, &DiffOptions::default()).unwrap();
        assert!(!r.ok());
        assert!(r
            .findings
            .iter()
            .any(|f| f.metric == "cells_touched" && f.severity == Severity::Regression));
        // Any num_squares drift is an identity failure.
        let drift = split_doc(100_000.0, 401.0);
        let r2 = diff_docs(&base, &drift, &DiffOptions::default()).unwrap();
        assert!(!r2.ok());
        assert!(r2
            .findings
            .iter()
            .any(|f| f.metric == "num_squares" && f.severity == Severity::Regression));
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let bad = Json::obj(vec![("schema", "bench-merge-v0".into())]);
        assert!(diff_docs(&bad, &bad, &DiffOptions::default()).is_err());
        assert!(diff_docs(&Json::obj(vec![]), &bad, &DiffOptions::default()).is_err());
    }

    #[test]
    fn split_and_tiles_schemas_are_accepted() {
        for tag in ["bench-split-v1", "bench-tiles-v1"] {
            let d = Json::obj(vec![("schema", tag.into()), ("rows", Json::Arr(vec![]))]);
            let r = diff_docs(&d, &d, &DiffOptions::default()).unwrap();
            assert!(r.ok(), "{tag}: {}", r.render());
            assert!(r.schema_warnings.is_empty());
        }
    }

    #[test]
    fn legacy_split_tag_warns_but_passes() {
        // Split documents written before `bench-split-v1` carry the merge
        // tag; they still diff cleanly, with a visible nudge to regenerate.
        let legacy = Json::obj(vec![
            ("schema", "bench-merge-v1".into()),
            ("generator", "bench_record split".into()),
            ("rows", Json::Arr(vec![])),
        ]);
        let r = diff_docs(&legacy, &legacy, &DiffOptions::default()).unwrap();
        assert!(r.ok());
        assert_eq!(r.schema_warnings.len(), 2); // baseline + current
        assert!(r.render().contains("legacy schema"));
    }

    #[test]
    fn speedup_gates_downward() {
        // Tiled rows carry a `speedup` work metric: losing it past the
        // tolerance regresses; gaining never does.
        let tiles_doc = |speedup: f64| {
            Json::obj(vec![
                ("schema", "bench-tiles-v1".into()),
                (
                    "rows",
                    Json::Arr(vec![Json::obj(vec![
                        ("backend", "tiled-j4".into()),
                        ("image", "speckle".into()),
                        ("tie_break", "smallest".into()),
                        ("threshold", 10.0.into()),
                        ("num_regions", 5000.0.into()),
                        ("speedup", speedup.into()),
                        ("wall_ms", 100.0.into()),
                    ])]),
                ),
            ])
        };
        let base = tiles_doc(1.5);
        let r = diff_docs(&base, &tiles_doc(1.0), &DiffOptions::default()).unwrap();
        assert!(!r.ok());
        assert!(r
            .findings
            .iter()
            .any(|f| f.metric == "speedup" && f.severity == Severity::Regression));
        let r = diff_docs(&base, &tiles_doc(2.0), &DiffOptions::default()).unwrap();
        assert!(r.ok(), "{}", r.render());
    }
}
