//! Tie-breaking ablation: the paper's "Resolving Ties at Random" claim.
//!
//! *"The random approach in breaking ties was shown to be significantly
//! faster than the approach of selecting the neighbor with the smallest
//! (largest) ID, since it generally results in a larger number of merges
//! per merge iteration."*

use rg_core::{segment, Config, TieBreak};
use rg_imaging::synth::PaperImage;

/// Merge-stage statistics for one tie-break policy on one image.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Policy label.
    pub policy: String,
    /// Merge iterations to termination.
    pub merge_iterations: u32,
    /// Mean merges per iteration.
    pub avg_merges_per_iter: f64,
    /// Regions at termination (identical across policies for the paper
    /// images — the partition is contrast-determined).
    pub num_regions: usize,
}

/// Runs the tie-break comparison on one paper image. `seeds` random seeds
/// are averaged for the random policy (the paper notes run-to-run
/// variation); the deterministic policies are run once.
pub fn run_ablation(pi: PaperImage, base: &Config, seeds: &[u64]) -> Vec<AblationRow> {
    let img = pi.generate();
    let mut rows = Vec::new();
    for (label, policies) in [
        (
            "Random",
            seeds
                .iter()
                .map(|&s| TieBreak::Random { seed: s })
                .collect::<Vec<_>>(),
        ),
        ("SmallestId", vec![TieBreak::SmallestId]),
        ("LargestId", vec![TieBreak::LargestId]),
    ] {
        let mut iters = 0u64;
        let mut merges = 0u64;
        let mut regions = 0usize;
        for tb in &policies {
            let cfg = Config {
                tie_break: *tb,
                ..*base
            };
            let seg = segment(&img, &cfg);
            iters += seg.merge_iterations as u64;
            merges += seg
                .merges_per_iteration
                .iter()
                .map(|&m| m as u64)
                .sum::<u64>();
            regions = seg.num_regions;
        }
        let n = policies.len() as f64;
        let avg_iters = iters as f64 / n;
        rows.push(AblationRow {
            policy: label.to_string(),
            merge_iterations: avg_iters.round() as u32,
            avg_merges_per_iter: if iters == 0 {
                0.0
            } else {
                merges as f64 / iters as f64
            },
            num_regions: regions,
        });
    }
    rows
}

/// Formats the ablation rows.
pub fn format_ablation(pi: PaperImage, rows: &[AblationRow]) -> String {
    let mut s = format!("{}\n", pi.description());
    s.push_str(&format!(
        "{:<12} {:>12} {:>18} {:>10}\n",
        "Tie-break", "Merge iters", "Merges per iter", "Regions"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:>12} {:>18.2} {:>10}\n",
            r.policy, r.merge_iterations, r.avg_merges_per_iter, r.num_regions
        ));
    }
    s
}
