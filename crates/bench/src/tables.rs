//! Regeneration of the paper's six per-image result tables.
//!
//! Every platform run goes through the unified telemetry layer: each engine
//! reports into a [`Recorder`] and the table rows are derived from the
//! resulting [`TelemetryReport`]s, so the numbers printed here are exactly
//! the numbers a `--telemetry` JSON dump would contain.

use cm_sim::CostModel;
use cmmd_sim::CommScheme;
use rg_core::{Config, Recorder, Stage, TelemetryReport, TieBreak};
use rg_datapar::segment_datapar_with_telemetry;
use rg_imaging::synth::PaperImage;
use rg_msgpass::{segment_msgpass_with_telemetry, Decomposition};

/// Node count of the paper's CM-5 (and the processor-grid assumption the
/// square cap derives from).
pub const CM5_NODES: usize = 32;

/// One platform row of a results table.
#[derive(Debug, Clone)]
pub struct PlatformResult {
    /// Platform label, matching the paper's rows.
    pub platform: String,
    /// Simulated split-stage seconds.
    pub split_s: f64,
    /// Split iterations.
    pub split_iters: u32,
    /// Simulated merge-stage seconds (graph setup + merging, as the paper
    /// reports them).
    pub merge_s: f64,
    /// Merge iterations.
    pub merge_iters: u32,
    /// Squares found at the end of the split stage.
    pub num_squares: usize,
    /// Regions at the end of the merge stage.
    pub num_regions: usize,
}

impl PlatformResult {
    /// Derives a table row from a recorded telemetry report (simulated
    /// stage seconds, iteration counts, square/region totals).
    pub fn from_report(platform: String, r: &TelemetryReport) -> Self {
        PlatformResult {
            platform,
            split_s: r.stage_seconds(Stage::Split).unwrap_or(0.0),
            split_iters: r.split_iterations,
            merge_s: r.merge_seconds_as_reported().unwrap_or(0.0),
            merge_iters: r.total_merge_iterations(),
            num_squares: r.num_squares,
            num_regions: r.num_regions,
        }
    }
}

/// The paper's published row for a platform.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Platform label.
    pub platform: &'static str,
    /// Published split seconds.
    pub split_s: f64,
    /// Published split iterations.
    pub split_iters: u32,
    /// Published merge seconds.
    pub merge_s: f64,
    /// Published merge iterations.
    pub merge_iters: u32,
}

/// The experiment configuration used for every table: the default
/// threshold, random tie-breaking (the paper's fast default), and the
/// square cap implied by the 32-node decomposition — which also makes all
/// engines produce identical split results (see DESIGN.md §5).
pub fn paper_config(image_side: usize) -> Config {
    let d = Decomposition::for_nodes(CM5_NODES, image_side, image_side);
    Config::with_threshold(rg_imaging::synth::DEFAULT_THRESHOLD)
        .tie_break(TieBreak::Random { seed: 0x5EED })
        .max_square_log2(Some(d.max_safe_square_log2()))
}

/// Runs one paper image across all five platform configurations, returning
/// each platform's table row together with the full telemetry report it was
/// derived from.
pub fn run_all_platforms_with_reports(pi: PaperImage) -> Vec<(PlatformResult, TelemetryReport)> {
    let img = pi.generate();
    let cfg = paper_config(pi.size());
    let mut rows = Vec::new();

    for model in [
        CostModel::cm2_8k(),
        CostModel::cm2_16k(),
        CostModel::cm5_dp_32(),
    ] {
        let mut rec = Recorder::new();
        let out = segment_datapar_with_telemetry(&img, &cfg, model, &mut rec);
        let report = rec.into_report();
        rows.push((
            PlatformResult::from_report(format!("CM Fortran on {}", out.platform), &report),
            report,
        ));
    }
    for scheme in [CommScheme::LinearPermutation, CommScheme::Async] {
        let mut rec = Recorder::new();
        let out = segment_msgpass_with_telemetry(&img, &cfg, CM5_NODES, scheme, &mut rec);
        let report = rec.into_report();
        rows.push((
            PlatformResult::from_report(
                format!(
                    "F77 + CMMD on CM-5 ({} nodes, {})",
                    out.nodes,
                    scheme.label()
                ),
                &report,
            ),
            report,
        ));
    }
    rows
}

/// Runs one paper image across all five platform configurations.
pub fn run_all_platforms(pi: PaperImage) -> Vec<PlatformResult> {
    run_all_platforms_with_reports(pi)
        .into_iter()
        .map(|(row, _)| row)
        .collect()
}

/// The paper's published numbers for each image (split s / iters, merge
/// s / iters per platform, in the same platform order as
/// [`run_all_platforms`]).
pub fn paper_reference(pi: PaperImage) -> [PaperRow; 5] {
    const P: [&str; 5] = [
        "CM Fortran on CM-2 (8K procs)",
        "CM Fortran on CM-2 (16K procs)",
        "CM Fortran on CM-5 (32 nodes)",
        "F77 + CMMD on CM-5 (32 nodes, LP)",
        "F77 + CMMD on CM-5 (32 nodes, Async)",
    ];
    let rows: [(f64, u32, f64, u32); 5] = match pi {
        PaperImage::Image1 => [
            (0.200, 4, 9.511, 19),
            (0.112, 4, 7.027, 20),
            (0.361, 4, 33.013, 19),
            (0.022, 4, 6.914, 24),
            (0.021, 4, 4.025, 20),
        ],
        PaperImage::Image2 => [
            (0.200, 4, 8.184, 18),
            (0.112, 4, 5.345, 17),
            (0.360, 4, 31.615, 20),
            (0.022, 4, 9.236, 35),
            (0.021, 4, 6.441, 35),
        ],
        PaperImage::Image3 => [
            (0.200, 4, 13.711, 24),
            (0.112, 4, 9.538, 25),
            (0.361, 4, 42.570, 27),
            (0.022, 4, 9.454, 33),
            (0.021, 4, 5.516, 28),
        ],
        PaperImage::Image4 => [
            (1.008, 5, 13.882, 26),
            (0.529, 5, 10.381, 28),
            (2.052, 5, 37.588, 25),
            (0.097, 5, 16.512, 37),
            (0.097, 5, 10.942, 29),
        ],
        PaperImage::Image5 => [
            (1.008, 5, 9.287, 19),
            (0.529, 5, 6.633, 20),
            (2.046, 5, 24.471, 16),
            (0.099, 5, 14.388, 35),
            (0.098, 5, 6.640, 35),
        ],
        PaperImage::Image6 => [
            (1.008, 5, 19.530, 34),
            (0.529, 5, 13.426, 33),
            (2.066, 5, 75.582, 45),
            (0.098, 5, 12.192, 36),
            (0.098, 5, 7.236, 38),
        ],
    };
    [0, 1, 2, 3, 4].map(|i| PaperRow {
        platform: P[i],
        split_s: rows[i].0,
        split_iters: rows[i].1,
        merge_s: rows[i].2,
        merge_iters: rows[i].3,
    })
}

/// Formats one image's table (measured next to the paper's numbers).
pub fn format_table(pi: PaperImage, rows: &[PlatformResult]) -> String {
    let refs = paper_reference(pi);
    let mut s = String::new();
    s.push_str(&format!("{}\n", pi.description()));
    s.push_str(&format!(
        "No. of square regions found at end of split stage = {} (paper: {})\n",
        rows[0].num_squares,
        pi.paper_split_squares()
    ));
    s.push_str(&format!(
        "No. of regions found at end of merge stage = {} (paper: {})\n\n",
        rows[0].num_regions,
        pi.expected_final_regions()
    ));
    s.push_str(&format!(
        "{:<40} {:>9} {:>6} | {:>9} {:>6} || {:>9} {:>6} | {:>9} {:>6}\n",
        "", "Split", "Split", "Merge", "Merge", "paper", "paper", "paper", "paper"
    ));
    s.push_str(&format!(
        "{:<40} {:>9} {:>6} | {:>9} {:>6} || {:>9} {:>6} | {:>9} {:>6}\n",
        "Platform", "(secs)", "Iters", "(secs)", "Iters", "(secs)", "Iters", "(secs)", "Iters"
    ));
    s.push_str(&"-".repeat(124));
    s.push('\n');
    for (r, p) in rows.iter().zip(refs.iter()) {
        s.push_str(&format!(
            "{:<40} {:>9.3} {:>6} | {:>9.3} {:>6} || {:>9.3} {:>6} | {:>9.3} {:>6}\n",
            r.platform,
            r.split_s,
            r.split_iters,
            r.merge_s,
            r.merge_iters,
            p.split_s,
            p.split_iters,
            p.merge_s,
            p.merge_iters
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_matches_published_values() {
        // Spot-check against the paper's tables.
        let r1 = paper_reference(PaperImage::Image1);
        assert_eq!(r1[0].split_s, 0.200);
        assert_eq!(r1[4].merge_s, 4.025);
        assert_eq!(r1[3].merge_iters, 24);
        let r6 = paper_reference(PaperImage::Image6);
        assert_eq!(r6[2].merge_s, 75.582);
        assert_eq!(r6[2].platform, "CM Fortran on CM-5 (32 nodes)");
    }

    #[test]
    fn from_report_mirrors_recorded_run() {
        let img = rg_imaging::synth::nested_rects(64);
        let cfg = Config::with_threshold(10);
        let mut rec = Recorder::new();
        let out = segment_datapar_with_telemetry(&img, &cfg, CostModel::cm2_8k(), &mut rec);
        let row = PlatformResult::from_report("row".into(), rec.report());
        assert_eq!(row.split_s, out.split_seconds);
        assert_eq!(row.merge_s, out.merge_seconds_as_reported());
        assert_eq!(row.split_iters, out.seg.split_iterations);
        assert_eq!(row.merge_iters, out.seg.merge_iterations);
        assert_eq!(row.num_squares, out.seg.num_squares);
        assert_eq!(row.num_regions, out.seg.num_regions);
    }

    #[test]
    fn paper_config_uses_mp_safe_cap() {
        assert_eq!(paper_config(128).max_square_log2, Some(4));
        assert_eq!(paper_config(256).max_square_log2, Some(5));
    }

    #[test]
    fn format_table_includes_all_rows() {
        let rows: Vec<PlatformResult> = paper_reference(PaperImage::Image1)
            .iter()
            .map(|p| PlatformResult {
                platform: p.platform.to_string(),
                split_s: p.split_s,
                split_iters: p.split_iters,
                merge_s: p.merge_s,
                merge_iters: p.merge_iters,
                num_squares: 436,
                num_regions: 2,
            })
            .collect();
        let text = format_table(PaperImage::Image1, &rows);
        assert!(text.contains("CM Fortran on CM-2 (8K procs)"));
        assert!(text.contains("F77 + CMMD on CM-5 (32 nodes, Async)"));
        assert!(text.contains("436"));
    }
}
