//! # rg-bench
//!
//! Benchmark harness for the reproduction: shared machinery for the
//! table/figure regeneration binaries (`paper_tables`, `figures`) and the
//! criterion benches.
//!
//! [`tables`] runs one of the paper's six evaluation images across the five
//! platform configurations (CM-2 8K, CM-2 16K, CM-5 data-parallel, CM-5
//! message-passing LP and Async) and pairs each measured row with the
//! paper's published row so drift is visible at a glance.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod diff;
pub mod tables;
