//! End-to-end data-parallel driver: the CM Fortran program, step by step.

use crate::graph_dp::build_graph;
use crate::merge_dp::merge_dp;
use crate::split_dp::split_dp;
use cm_sim::{CostModel, Machine, ALL_PRIMS};
use rg_core::labels::compact_first_appearance;
use rg_core::telemetry::{
    derive_merge_iterations, Histogram, NullTelemetry, SpanGuard, SpanKind, Stage, StageSpan,
    Telemetry,
};
use rg_core::{Config, Segmentation};
use rg_imaging::{Image, Intensity};
use std::time::Instant;

/// A data-parallel run's outputs: the segmentation plus the simulated
/// per-stage times on the chosen platform.
#[derive(Debug, Clone)]
pub struct DataParOutcome {
    /// Per-primitive ledger of the split stage.
    pub split_ledger: cm_sim::CostLedger,
    /// Per-primitive ledger of the graph-construction step.
    pub graph_ledger: cm_sim::CostLedger,
    /// Per-primitive ledger of the merge stage.
    pub merge_ledger: cm_sim::CostLedger,
    /// The segmentation (identical to the host engines' output).
    pub seg: Segmentation,
    /// Simulated seconds spent in the split stage.
    pub split_seconds: f64,
    /// Simulated seconds spent building the graph (the paper folds this
    /// into the merge stage; reported separately here and summed in the
    /// tables).
    pub graph_seconds: f64,
    /// Simulated seconds spent in the merge stage.
    pub merge_seconds: f64,
    /// Platform name from the cost model.
    pub platform: &'static str,
}

impl DataParOutcome {
    /// Merge-stage time as the paper reports it (graph setup + merging).
    pub fn merge_seconds_as_reported(&self) -> f64 {
        self.graph_seconds + self.merge_seconds
    }
}

/// Runs the full data-parallel split-and-merge program on a simulated
/// machine with the given cost model.
pub fn segment_datapar<P: Intensity>(
    img: &Image<P>,
    config: &Config,
    model: CostModel,
) -> DataParOutcome {
    segment_datapar_with_telemetry(img, config, model, &mut NullTelemetry)
}

/// [`segment_datapar`] reporting into the given [`Telemetry`] sink: stage
/// spans carry both host wall time and the cost model's simulated seconds,
/// and the per-primitive ledger counts land as named counters
/// (`"<stage>.<prim>.ops"` / `"<stage>.<prim>.seconds"`).
pub fn segment_datapar_with_telemetry<P: Intensity>(
    img: &Image<P>,
    config: &Config,
    model: CostModel,
    tel: &mut dyn Telemetry,
) -> DataParOutcome {
    let m = Machine::new(model);
    let enabled = tel.enabled();
    if enabled {
        tel.run_start(
            &format!("datapar:{}", model.name),
            img.width(),
            img.height(),
            config,
        );
    }
    let mut t0 = enabled.then(Instant::now);
    let mut lap = move || -> f64 {
        match &mut t0 {
            Some(t) => {
                let dt = t.elapsed().as_secs_f64();
                *t = Instant::now();
                dt
            }
            None => 0.0,
        }
    };

    // The whole program runs inside the `run` span; the guard closes it
    // even on unwind. The simulated engine derives its per-iteration
    // records after the fact, so the `iter:<n>` spans it emits are
    // zero-duration markers — still balanced and strictly nested inside
    // `stage:merge`, as journal validation requires.
    let (
        split,
        split_ledger,
        split_seconds,
        graph,
        graph_ledger,
        graph_seconds,
        merged,
        merge_ledger,
        merge_seconds,
        labels,
        num_regions,
    ) = {
        let mut run_span = SpanGuard::enter(&mut *tel, SpanKind::Run);
        let tel = run_span.tel();

        // Step 1: split.
        let split = {
            let _span = SpanGuard::enter(&mut *tel, SpanKind::Stage(Stage::Split));
            split_dp(&m, img, config)
        };
        let split_ledger = m.ledger_snapshot();
        let split_seconds = split_ledger.seconds();
        m.reset_ledger();
        if enabled {
            tel.stage(StageSpan {
                stage: Stage::Split,
                wall_seconds: lap(),
                sim_seconds: Some(split_seconds),
            });
        }

        // Step 2: vertices and edges.
        let graph = {
            let _span = SpanGuard::enter(&mut *tel, SpanKind::Stage(Stage::Graph));
            build_graph(&m, &split, config.connectivity)
        };
        let graph_ledger = m.ledger_snapshot();
        let graph_seconds = graph_ledger.seconds();
        m.reset_ledger();
        if enabled {
            tel.stage(StageSpan {
                stage: Stage::Graph,
                wall_seconds: lap(),
                sim_seconds: Some(graph_seconds),
            });
            tel.split_done(split.iterations, graph.num_vertices as usize);
        }

        // Steps 3–5: merge loop.
        let merged = {
            let mut merge_span = SpanGuard::enter(&mut *tel, SpanKind::Stage(Stage::Merge));
            let tel = merge_span.tel();
            let merged = merge_dp(&m, &graph, config);
            if enabled {
                let mut merges_hist = Histogram::new();
                for rec in derive_merge_iterations(
                    &merged.summary.merges_per_iteration,
                    config.tie_break,
                    config.max_stall,
                ) {
                    merges_hist.record(u64::from(rec.merges));
                    let mut iter_span =
                        SpanGuard::enter(&mut *tel, SpanKind::MergeIteration(rec.iteration));
                    iter_span.tel().merge_iteration(rec);
                }
                tel.histogram("merge.merges_per_iteration", &merges_hist);
            }
            merged
        };
        let merge_ledger = m.ledger_snapshot();
        let merge_seconds = merge_ledger.seconds();
        if enabled {
            tel.stage(StageSpan {
                stage: Stage::Merge,
                wall_seconds: lap(),
                sim_seconds: Some(merge_seconds),
            });
            tel.merge_done(merged.summary.num_regions);
        }

        // Host-side label compaction (front-end work, uncharged — the CM
        // host also post-processed results).
        let (labels, num_regions) = {
            let _span = SpanGuard::enter(&mut *tel, SpanKind::Stage(Stage::Label));
            compact_first_appearance(merged.pixel_rep.as_slice())
        };
        debug_assert_eq!(num_regions, merged.summary.num_regions);
        if enabled {
            tel.stage(StageSpan {
                stage: Stage::Label,
                wall_seconds: lap(),
                sim_seconds: None,
            });
            // Region-size distribution at convergence.
            let mut sizes = vec![0u64; num_regions];
            for &l in &labels {
                sizes[l as usize] += 1;
            }
            let mut region_hist = Histogram::new();
            for s in sizes {
                region_hist.record(s);
            }
            tel.histogram("region_size_px", &region_hist);
            // Per-primitive breakdown: the empirical counterpart of the
            // paper's complexity analysis, one counter pair per primitive.
            for (stage, ledger) in [
                ("split", &split_ledger),
                ("graph", &graph_ledger),
                ("merge", &merge_ledger),
            ] {
                for prim in ALL_PRIMS {
                    let ops = ledger.count(prim);
                    if ops > 0 {
                        let name = format!("{prim:?}").to_lowercase();
                        tel.counter(&format!("{stage}.{name}.ops"), ops as f64);
                        tel.counter(&format!("{stage}.{name}.seconds"), ledger.seconds_of(prim));
                    }
                }
            }
        }
        (
            split,
            split_ledger,
            split_seconds,
            graph,
            graph_ledger,
            graph_seconds,
            merged,
            merge_ledger,
            merge_seconds,
            labels,
            num_regions,
        )
    };
    if enabled {
        tel.run_end();
    }

    DataParOutcome {
        split_ledger,
        graph_ledger,
        merge_ledger,
        seg: Segmentation {
            labels,
            num_regions,
            num_squares: graph.num_vertices as usize,
            split_iterations: split.iterations,
            merge_iterations: merged.summary.iterations,
            merges_per_iteration: merged.summary.merges_per_iteration,
            width: img.width(),
            height: img.height(),
        },
        split_seconds,
        graph_seconds,
        merge_seconds,
        platform: m.model().name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rg_core::{segment, Criterion, TieBreak};
    use rg_imaging::synth;

    fn check_matches_host(img: &Image<u8>, config: &Config) {
        let host = segment(img, config);
        for model in [CostModel::cm2_8k(), CostModel::cm5_dp_32()] {
            let dp = segment_datapar(img, config, model);
            assert_eq!(dp.seg, host, "model {}", dp.platform);
            assert!(dp.split_seconds > 0.0);
            assert!(dp.merge_seconds > 0.0 || host.merge_iterations == 0);
        }
    }

    #[test]
    fn figure1_matches_host() {
        let img = synth::figure1_image();
        check_matches_host(
            &img,
            &Config::with_threshold(3).tie_break(TieBreak::SmallestId),
        );
    }

    #[test]
    fn paper_style_images_match_host() {
        check_matches_host(&synth::nested_rects(64), &Config::with_threshold(10));
        check_matches_host(&synth::rect_collection(64), &Config::with_threshold(10));
    }

    #[test]
    fn random_scenes_match_host_all_policies() {
        for seed in 0..3 {
            let img = synth::random_rects(32, 32, 6, seed);
            for tie in [
                TieBreak::SmallestId,
                TieBreak::LargestId,
                TieBreak::Random { seed: 5 },
            ] {
                for t in [5, 25] {
                    check_matches_host(&img, &Config::with_threshold(t).tie_break(tie));
                }
            }
        }
    }

    #[test]
    fn non_square_image_matches_host() {
        let img = synth::uniform_noise(40, 24, 100, 112, 9);
        check_matches_host(&img, &Config::with_threshold(12));
    }

    #[test]
    fn mean_criterion_matches_host() {
        let img = synth::uniform_noise(32, 32, 100, 130, 3);
        check_matches_host(
            &img,
            &Config::with_threshold(8).criterion(Criterion::MeanDifference),
        );
    }

    #[test]
    fn merge_only_baseline_matches_host() {
        let img = synth::rect_collection(32);
        check_matches_host(&img, &Config::with_threshold(10).max_square_log2(Some(0)));
    }

    #[test]
    fn telemetry_carries_simulated_times_and_prim_counters() {
        use rg_core::telemetry::Recorder;
        let img = synth::nested_rects(64);
        let cfg = Config::with_threshold(10);
        let mut rec = Recorder::new();
        let out = segment_datapar_with_telemetry(&img, &cfg, CostModel::cm2_8k(), &mut rec);
        let r = rec.report();
        assert!(rec.is_finished());
        assert_eq!(r.engine, "datapar:CM-2 (8K procs)");
        // Stage spans carry the ledger's simulated seconds exactly.
        assert_eq!(r.stage_seconds(Stage::Split), Some(out.split_seconds));
        assert_eq!(
            r.merge_seconds_as_reported(),
            Some(out.merge_seconds_as_reported())
        );
        // Segmentation-level counters agree with the outcome.
        assert_eq!(r.merges_per_iteration(), out.seg.merges_per_iteration);
        assert_eq!(r.split_iterations, out.seg.split_iterations);
        assert_eq!(r.num_squares, out.seg.num_squares);
        assert_eq!(r.num_regions, out.seg.num_regions);
        // Per-primitive counters match the ledgers.
        assert_eq!(
            r.counter("split.elementwise.ops"),
            Some(out.split_ledger.count(cm_sim::Prim::Elementwise) as f64)
        );
        assert_eq!(
            r.counter("merge.send.ops"),
            Some(out.merge_ledger.count(cm_sim::Prim::Send) as f64)
        );
        // No comm record for a data-parallel run.
        assert!(r.comm.is_none());
    }

    #[test]
    fn cm2_16k_is_faster_than_8k() {
        let img = synth::nested_rects(128);
        let cfg = Config::with_threshold(10);
        let a = segment_datapar(&img, &cfg, CostModel::cm2_8k());
        let b = segment_datapar(&img, &cfg, CostModel::cm2_16k());
        assert_eq!(a.seg, b.seg);
        assert!(b.split_seconds < a.split_seconds);
        assert!(b.merge_seconds_as_reported() < a.merge_seconds_as_reported());
    }

    #[test]
    fn cm5_dp_is_slower_than_cm2_on_paper_sizes() {
        // The paper's headline observation for the data-parallel code.
        let img = synth::rect_collection(128);
        let cfg = Config::with_threshold(10);
        let cm2 = segment_datapar(&img, &cfg, CostModel::cm2_16k());
        let cm5 = segment_datapar(&img, &cfg, CostModel::cm5_dp_32());
        assert!(cm5.split_seconds > cm2.split_seconds);
        assert!(cm5.merge_seconds_as_reported() > cm2.merge_seconds_as_reported());
    }
}
