//! End-to-end data-parallel driver: the CM Fortran program, step by step.

use crate::graph_dp::build_graph;
use crate::merge_dp::merge_dp;
use crate::split_dp::split_dp;
use cm_sim::{CostModel, Machine};
use rg_core::labels::compact_first_appearance;
use rg_core::{Config, Segmentation};
use rg_imaging::{Image, Intensity};

/// A data-parallel run's outputs: the segmentation plus the simulated
/// per-stage times on the chosen platform.
#[derive(Debug, Clone)]
pub struct DataParOutcome {
    /// Per-primitive ledger of the split stage.
    pub split_ledger: cm_sim::CostLedger,
    /// Per-primitive ledger of the graph-construction step.
    pub graph_ledger: cm_sim::CostLedger,
    /// Per-primitive ledger of the merge stage.
    pub merge_ledger: cm_sim::CostLedger,
    /// The segmentation (identical to the host engines' output).
    pub seg: Segmentation,
    /// Simulated seconds spent in the split stage.
    pub split_seconds: f64,
    /// Simulated seconds spent building the graph (the paper folds this
    /// into the merge stage; reported separately here and summed in the
    /// tables).
    pub graph_seconds: f64,
    /// Simulated seconds spent in the merge stage.
    pub merge_seconds: f64,
    /// Platform name from the cost model.
    pub platform: &'static str,
}

impl DataParOutcome {
    /// Merge-stage time as the paper reports it (graph setup + merging).
    pub fn merge_seconds_as_reported(&self) -> f64 {
        self.graph_seconds + self.merge_seconds
    }
}

/// Runs the full data-parallel split-and-merge program on a simulated
/// machine with the given cost model.
pub fn segment_datapar<P: Intensity>(
    img: &Image<P>,
    config: &Config,
    model: CostModel,
) -> DataParOutcome {
    let m = Machine::new(model);

    // Step 1: split.
    let split = split_dp(&m, img, config);
    let split_ledger = m.ledger_snapshot();
    let split_seconds = split_ledger.seconds();
    m.reset_ledger();

    // Step 2: vertices and edges.
    let graph = build_graph(&m, &split, config.connectivity);
    let graph_ledger = m.ledger_snapshot();
    let graph_seconds = graph_ledger.seconds();
    m.reset_ledger();

    // Steps 3–5: merge loop.
    let merged = merge_dp(&m, &graph, config);
    let merge_ledger = m.ledger_snapshot();
    let merge_seconds = merge_ledger.seconds();

    // Host-side label compaction (front-end work, uncharged — the CM host
    // also post-processed results).
    let (labels, num_regions) = compact_first_appearance(merged.pixel_rep.as_slice());
    debug_assert_eq!(num_regions, merged.summary.num_regions);

    DataParOutcome {
        split_ledger,
        graph_ledger,
        merge_ledger,
        seg: Segmentation {
            labels,
            num_regions,
            num_squares: graph.num_vertices as usize,
            split_iterations: split.iterations,
            merge_iterations: merged.summary.iterations,
            merges_per_iteration: merged.summary.merges_per_iteration,
            width: img.width(),
            height: img.height(),
        },
        split_seconds,
        graph_seconds,
        merge_seconds,
        platform: m.model().name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rg_core::{segment, Criterion, TieBreak};
    use rg_imaging::synth;

    fn check_matches_host(img: &Image<u8>, config: &Config) {
        let host = segment(img, config);
        for model in [CostModel::cm2_8k(), CostModel::cm5_dp_32()] {
            let dp = segment_datapar(img, config, model);
            assert_eq!(dp.seg, host, "model {}", dp.platform);
            assert!(dp.split_seconds > 0.0);
            assert!(dp.merge_seconds > 0.0 || host.merge_iterations == 0);
        }
    }

    #[test]
    fn figure1_matches_host() {
        let img = synth::figure1_image();
        check_matches_host(&img, &Config::with_threshold(3).tie_break(TieBreak::SmallestId));
    }

    #[test]
    fn paper_style_images_match_host() {
        check_matches_host(&synth::nested_rects(64), &Config::with_threshold(10));
        check_matches_host(&synth::rect_collection(64), &Config::with_threshold(10));
    }

    #[test]
    fn random_scenes_match_host_all_policies() {
        for seed in 0..3 {
            let img = synth::random_rects(32, 32, 6, seed);
            for tie in [
                TieBreak::SmallestId,
                TieBreak::LargestId,
                TieBreak::Random { seed: 5 },
            ] {
                for t in [5, 25] {
                    check_matches_host(&img, &Config::with_threshold(t).tie_break(tie));
                }
            }
        }
    }

    #[test]
    fn non_square_image_matches_host() {
        let img = synth::uniform_noise(40, 24, 100, 112, 9);
        check_matches_host(&img, &Config::with_threshold(12));
    }

    #[test]
    fn mean_criterion_matches_host() {
        let img = synth::uniform_noise(32, 32, 100, 130, 3);
        check_matches_host(
            &img,
            &Config::with_threshold(8).criterion(Criterion::MeanDifference),
        );
    }

    #[test]
    fn merge_only_baseline_matches_host() {
        let img = synth::rect_collection(32);
        check_matches_host(
            &img,
            &Config::with_threshold(10).max_square_log2(Some(0)),
        );
    }

    #[test]
    fn cm2_16k_is_faster_than_8k() {
        let img = synth::nested_rects(128);
        let cfg = Config::with_threshold(10);
        let a = segment_datapar(&img, &cfg, CostModel::cm2_8k());
        let b = segment_datapar(&img, &cfg, CostModel::cm2_16k());
        assert_eq!(a.seg, b.seg);
        assert!(b.split_seconds < a.split_seconds);
        assert!(b.merge_seconds_as_reported() < a.merge_seconds_as_reported());
    }

    #[test]
    fn cm5_dp_is_slower_than_cm2_on_paper_sizes() {
        // The paper's headline observation for the data-parallel code.
        let img = synth::rect_collection(128);
        let cfg = Config::with_threshold(10);
        let cm2 = segment_datapar(&img, &cfg, CostModel::cm2_16k());
        let cm5 = segment_datapar(&img, &cfg, CostModel::cm5_dp_32());
        assert!(cm5.split_seconds > cm2.split_seconds);
        assert!(cm5.merge_seconds_as_reported() > cm2.merge_seconds_as_reported());
    }
}
