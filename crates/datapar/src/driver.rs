//! End-to-end data-parallel driver: the CM Fortran program, step by step.
//!
//! The orchestration itself lives in [`rg_core::driver::run_driver`]; this
//! module supplies the [`DataParBackend`] — each stage runs live on the
//! simulated [`Machine`], and the per-stage cost-model ledger snapshots
//! become the [`StageStats`] simulated seconds the driver reports.

use crate::graph_dp::{build_graph, DpGraph};
use crate::merge_dp::{merge_dp, DpMerge};
use crate::split_dp::{split_dp, DpSplit};
use cm_sim::{CostLedger, CostModel, Machine, ALL_PRIMS};
use rg_core::driver::{
    run_driver, EngineBackend, GraphStage, LabelStage, MergeCx, MergeStage, RunSummary, SplitInfo,
    SplitStage, StageStats,
};
use rg_core::labels::compact_first_appearance;
use rg_core::telemetry::{derive_merge_iterations, NullTelemetry, Telemetry};
use rg_core::{Config, Segmentation};
use rg_imaging::{Image, Intensity};

/// A data-parallel run's outputs: the segmentation plus the simulated
/// per-stage times on the chosen platform.
#[derive(Debug, Clone)]
pub struct DataParOutcome {
    /// Per-primitive ledger of the split stage.
    pub split_ledger: cm_sim::CostLedger,
    /// Per-primitive ledger of the graph-construction step.
    pub graph_ledger: cm_sim::CostLedger,
    /// Per-primitive ledger of the merge stage.
    pub merge_ledger: cm_sim::CostLedger,
    /// The segmentation (identical to the host engines' output).
    pub seg: Segmentation,
    /// Simulated seconds spent in the split stage.
    pub split_seconds: f64,
    /// Simulated seconds spent building the graph (the paper folds this
    /// into the merge stage; reported separately here and summed in the
    /// tables).
    pub graph_seconds: f64,
    /// Simulated seconds spent in the merge stage.
    pub merge_seconds: f64,
    /// Platform name from the cost model.
    pub platform: &'static str,
}

impl DataParOutcome {
    /// Merge-stage time as the paper reports it (graph setup + merging).
    pub fn merge_seconds_as_reported(&self) -> f64 {
        self.graph_seconds + self.merge_seconds
    }
}

/// Runs the full data-parallel split-and-merge program on a simulated
/// machine with the given cost model.
pub fn segment_datapar<P: Intensity>(
    img: &Image<P>,
    config: &Config,
    model: CostModel,
) -> DataParOutcome {
    segment_datapar_with_telemetry(img, config, model, &mut NullTelemetry)
}

/// [`segment_datapar`] reporting into the given [`Telemetry`] sink: stage
/// spans carry both host wall time and the cost model's simulated seconds,
/// and the per-primitive ledger counts land as named counters
/// (`"<stage>.<prim>.ops"` / `"<stage>.<prim>.seconds"`).
pub fn segment_datapar_with_telemetry<P: Intensity>(
    img: &Image<P>,
    config: &Config,
    model: CostModel,
    tel: &mut dyn Telemetry,
) -> DataParOutcome {
    let mut backend = DataParBackend::new(img, config, model);
    let mut out = Segmentation::default();
    run_driver(&mut backend, tel, &mut out);
    backend.into_outcome(out)
}

/// The data-parallel engine as a stage-driver backend: the CM Fortran
/// program executed stage by stage on a simulated [`Machine`].
///
/// Every stage runs live inside the span the driver opens for it; the
/// machine's per-stage [`CostLedger`] snapshot supplies the simulated
/// seconds for the stage record. The simulated merge derives its
/// per-iteration records after the fact (the `iter:<n>` spans it replays
/// through [`MergeCx::iteration`] are zero-duration markers — still
/// balanced and strictly nested inside `stage:merge`, as journal
/// validation requires).
pub struct DataParBackend<'a, P: Intensity> {
    m: Machine,
    img: &'a Image<P>,
    config: &'a Config,
    split: Option<DpSplit>,
    graph: Option<DpGraph>,
    merged: Option<DpMerge>,
    split_ledger: Option<CostLedger>,
    graph_ledger: Option<CostLedger>,
    merge_ledger: Option<CostLedger>,
}

impl<'a, P: Intensity> DataParBackend<'a, P> {
    /// A backend over `img` running on a fresh machine with cost model
    /// `model`.
    pub fn new(img: &'a Image<P>, config: &'a Config, model: CostModel) -> Self {
        Self {
            m: Machine::new(model),
            img,
            config,
            split: None,
            graph: None,
            merged: None,
            split_ledger: None,
            graph_ledger: None,
            merge_ledger: None,
        }
    }

    /// Consumes the backend into the full [`DataParOutcome`], attaching the
    /// driver-assembled segmentation.
    pub fn into_outcome(self, seg: Segmentation) -> DataParOutcome {
        let split_ledger = self.split_ledger.expect("split stage ran");
        let graph_ledger = self.graph_ledger.expect("graph stage ran");
        let merge_ledger = self.merge_ledger.expect("merge stage ran");
        DataParOutcome {
            split_seconds: split_ledger.seconds(),
            graph_seconds: graph_ledger.seconds(),
            merge_seconds: merge_ledger.seconds(),
            split_ledger,
            graph_ledger,
            merge_ledger,
            seg,
            platform: self.m.model().name,
        }
    }
}

impl<P: Intensity> SplitStage for DataParBackend<'_, P> {
    fn split(&mut self, _tel: &mut dyn Telemetry) -> StageStats {
        self.split = Some(split_dp(&self.m, self.img, self.config));
        let ledger = self.m.ledger_snapshot();
        self.m.reset_ledger();
        let seconds = ledger.seconds();
        self.split_ledger = Some(ledger);
        StageStats::simulated(seconds)
    }
}

impl<P: Intensity> GraphStage for DataParBackend<'_, P> {
    fn graph(&mut self, _tel: &mut dyn Telemetry) -> StageStats {
        let split = self.split.as_ref().expect("split stage ran");
        self.graph = Some(build_graph(&self.m, split, self.config.connectivity));
        let ledger = self.m.ledger_snapshot();
        self.m.reset_ledger();
        let seconds = ledger.seconds();
        self.graph_ledger = Some(ledger);
        StageStats::simulated(seconds)
    }
}

impl<P: Intensity> MergeStage for DataParBackend<'_, P> {
    fn merge(&mut self, cx: &mut MergeCx<'_>) -> StageStats {
        let graph = self.graph.as_ref().expect("graph stage ran");
        let merged = merge_dp(&self.m, graph, self.config);
        if cx.enabled() {
            for rec in derive_merge_iterations(
                &merged.summary.merges_per_iteration,
                self.config.tie_break,
                self.config.max_stall,
            ) {
                cx.iteration(rec.iteration, |_tel| rec);
            }
        }
        self.merged = Some(merged);
        let ledger = self.m.ledger_snapshot();
        let seconds = ledger.seconds();
        self.merge_ledger = Some(ledger);
        StageStats::simulated(seconds)
    }
}

impl<P: Intensity> LabelStage for DataParBackend<'_, P> {
    fn label(&mut self, _tel: &mut dyn Telemetry, out: &mut Segmentation) -> (StageStats, usize) {
        // Host-side label compaction (front-end work, uncharged — the CM
        // host also post-processed results).
        let merged = self.merged.as_ref().expect("merge stage ran");
        let (labels, num_regions) = compact_first_appearance(merged.pixel_rep.as_slice());
        out.labels = labels;
        (StageStats::live(), num_regions)
    }
}

impl<P: Intensity> EngineBackend for DataParBackend<'_, P> {
    fn engine(&self) -> String {
        format!("datapar:{}", self.m.model().name)
    }

    fn dims(&self) -> (usize, usize) {
        (self.img.width(), self.img.height())
    }

    fn config(&self) -> &Config {
        self.config
    }

    fn split_info(&self) -> SplitInfo {
        SplitInfo {
            iterations: self.split.as_ref().expect("split stage ran").iterations,
            // Vertex count is fixed by graph construction (slot
            // compaction), so the driver asks after the graph stage.
            num_squares: self.graph.as_ref().expect("graph stage ran").num_vertices as usize,
        }
    }

    fn summary(&self) -> RunSummary<'_> {
        let merged = self.merged.as_ref().expect("merge stage ran");
        RunSummary {
            split_iterations: self.split.as_ref().expect("split stage ran").iterations,
            num_squares: self.graph.as_ref().expect("graph stage ran").num_vertices as usize,
            merge_iterations: merged.summary.iterations,
            merges_per_iteration: &merged.summary.merges_per_iteration,
            num_regions: merged.summary.num_regions,
        }
    }

    fn run_report(&mut self, tel: &mut dyn Telemetry) {
        // Per-primitive breakdown: the empirical counterpart of the
        // paper's complexity analysis, one counter pair per primitive.
        for (stage, ledger) in [
            ("split", self.split_ledger.as_ref()),
            ("graph", self.graph_ledger.as_ref()),
            ("merge", self.merge_ledger.as_ref()),
        ] {
            let ledger = ledger.expect("all stages ran");
            for prim in ALL_PRIMS {
                let ops = ledger.count(prim);
                if ops > 0 {
                    let name = format!("{prim:?}").to_lowercase();
                    tel.counter(&format!("{stage}.{name}.ops"), ops as f64);
                    tel.counter(&format!("{stage}.{name}.seconds"), ledger.seconds_of(prim));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rg_core::telemetry::Stage;
    use rg_core::{segment, Criterion, TieBreak};
    use rg_imaging::synth;

    fn check_matches_host(img: &Image<u8>, config: &Config) {
        let host = segment(img, config);
        for model in [CostModel::cm2_8k(), CostModel::cm5_dp_32()] {
            let dp = segment_datapar(img, config, model);
            assert_eq!(dp.seg, host, "model {}", dp.platform);
            assert!(dp.split_seconds > 0.0);
            assert!(dp.merge_seconds > 0.0 || host.merge_iterations == 0);
        }
    }

    #[test]
    fn figure1_matches_host() {
        let img = synth::figure1_image();
        check_matches_host(
            &img,
            &Config::with_threshold(3).tie_break(TieBreak::SmallestId),
        );
    }

    #[test]
    fn paper_style_images_match_host() {
        check_matches_host(&synth::nested_rects(64), &Config::with_threshold(10));
        check_matches_host(&synth::rect_collection(64), &Config::with_threshold(10));
    }

    #[test]
    fn random_scenes_match_host_all_policies() {
        for seed in 0..3 {
            let img = synth::random_rects(32, 32, 6, seed);
            for tie in [
                TieBreak::SmallestId,
                TieBreak::LargestId,
                TieBreak::Random { seed: 5 },
            ] {
                for t in [5, 25] {
                    check_matches_host(&img, &Config::with_threshold(t).tie_break(tie));
                }
            }
        }
    }

    #[test]
    fn non_square_image_matches_host() {
        let img = synth::uniform_noise(40, 24, 100, 112, 9);
        check_matches_host(&img, &Config::with_threshold(12));
    }

    #[test]
    fn mean_criterion_matches_host() {
        let img = synth::uniform_noise(32, 32, 100, 130, 3);
        check_matches_host(
            &img,
            &Config::with_threshold(8).criterion(Criterion::MeanDifference),
        );
    }

    #[test]
    fn merge_only_baseline_matches_host() {
        let img = synth::rect_collection(32);
        check_matches_host(&img, &Config::with_threshold(10).max_square_log2(Some(0)));
    }

    #[test]
    fn telemetry_carries_simulated_times_and_prim_counters() {
        use rg_core::telemetry::Recorder;
        let img = synth::nested_rects(64);
        let cfg = Config::with_threshold(10);
        let mut rec = Recorder::new();
        let out = segment_datapar_with_telemetry(&img, &cfg, CostModel::cm2_8k(), &mut rec);
        let r = rec.report();
        assert!(rec.is_finished());
        assert_eq!(r.engine, "datapar:CM-2 (8K procs)");
        // Stage spans carry the ledger's simulated seconds exactly.
        assert_eq!(r.stage_seconds(Stage::Split), Some(out.split_seconds));
        assert_eq!(
            r.merge_seconds_as_reported(),
            Some(out.merge_seconds_as_reported())
        );
        // Segmentation-level counters agree with the outcome.
        assert_eq!(r.merges_per_iteration(), out.seg.merges_per_iteration);
        assert_eq!(r.split_iterations, out.seg.split_iterations);
        assert_eq!(r.num_squares, out.seg.num_squares);
        assert_eq!(r.num_regions, out.seg.num_regions);
        // Per-primitive counters match the ledgers.
        assert_eq!(
            r.counter("split.elementwise.ops"),
            Some(out.split_ledger.count(cm_sim::Prim::Elementwise) as f64)
        );
        assert_eq!(
            r.counter("merge.send.ops"),
            Some(out.merge_ledger.count(cm_sim::Prim::Send) as f64)
        );
        // No comm record for a data-parallel run.
        assert!(r.comm.is_none());
    }

    #[test]
    fn cm2_16k_is_faster_than_8k() {
        let img = synth::nested_rects(128);
        let cfg = Config::with_threshold(10);
        let a = segment_datapar(&img, &cfg, CostModel::cm2_8k());
        let b = segment_datapar(&img, &cfg, CostModel::cm2_16k());
        assert_eq!(a.seg, b.seg);
        assert!(b.split_seconds < a.split_seconds);
        assert!(b.merge_seconds_as_reported() < a.merge_seconds_as_reported());
    }

    #[test]
    fn cm5_dp_is_slower_than_cm2_on_paper_sizes() {
        // The paper's headline observation for the data-parallel code.
        let img = synth::rect_collection(128);
        let cfg = Config::with_threshold(10);
        let cm2 = segment_datapar(&img, &cfg, CostModel::cm2_16k());
        let cm5 = segment_datapar(&img, &cfg, CostModel::cm5_dp_32());
        assert!(cm5.split_seconds > cm2.split_seconds);
        assert!(cm5.merge_seconds_as_reported() > cm2.merge_seconds_as_reported());
    }
}
