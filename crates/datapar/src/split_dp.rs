//! Data-parallel split stage (the paper's step 1).
//!
//! The pixel image lives in 2-D fields, one virtual processor per pixel —
//! exactly the CM Fortran layout. The invariant is *corner-resident*
//! state: a pixel holds valid `(level, stats)` iff it is the top-left
//! corner of a current square; all other pixels hold the `DEAD` level.
//!
//! Iteration `k` (block side `2^k`, child offset `d = 2^(k-1)`):
//!
//! 1. NEWS-shift the corner fields by `(-d, 0)`, `(0, -d)`, `(-d, -d)` so
//!    each candidate block corner sees its three sibling children;
//! 2. a corner coalesces when it is `2^k`-aligned, the block fits in the
//!    image, all four children are whole level-`k−1` squares, and the
//!    combined statistics satisfy the criterion;
//! 3. coalesced corners fold their children's statistics and take level
//!    `k`; the three consumed child corners go `DEAD` (their consumption
//!    flag arrives by the opposite shifts);
//! 4. a global OR tells the front end whether to iterate again — the same
//!    reduction the CM-2 would run, and the reason a split iteration costs
//!    `O(N²/P + log P)`.

use crate::fields::{PixelStats, DEAD};
use cm_sim::{Field, Machine, Shape};
use rg_core::kernels::{mean_pair_satisfies, range_pair_satisfies, union_hi, union_lo};
use rg_core::{Config, Criterion};
use rg_imaging::{Image, Intensity};

/// Outcome of the data-parallel split stage (still machine-resident).
pub struct DpSplit {
    /// Per-pixel square level; `DEAD` for non-corner pixels.
    pub level: Field<u32>,
    /// Corner-resident statistics.
    pub stats: PixelStats,
    /// Productive iterations.
    pub iterations: u32,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
}

/// Runs the split stage on the machine.
pub fn split_dp<P: Intensity>(m: &Machine, img: &Image<P>, config: &Config) -> DpSplit {
    let (w, h) = (img.width(), img.height());
    let shape = Shape::two_d(w, h);

    // Load the frame buffer into fields (one elementwise op to convert).
    let raw = Field::from_vec(shape, img.pixels().iter().map(|p| p.to_u32()).collect());
    let mut stats = PixelStats {
        min: raw.clone(),
        max: raw.clone(),
        sum: m.map(&raw, |v| v as u64),
        cnt: Field::constant(shape, 1u64),
    };
    let mut level: Field<u32> = Field::constant(shape, 0);

    // Coordinate fields for alignment / bounds tests.
    let idx = m.iota(shape);
    let xs = m.map(&idx, |i| i % w as u32);
    let ys = m.map(&idx, |i| i / w as u32);

    let max_k = {
        let lim = w.min(h);
        let natural = if lim.is_power_of_two() {
            lim.trailing_zeros() as usize
        } else {
            (lim.next_power_of_two().trailing_zeros() - 1) as usize
        };
        config
            .max_square_log2
            .map(|c| (c as usize).min(natural))
            .unwrap_or(natural)
    };

    let crit = config.criterion;
    let t = config.threshold;
    let mut iterations = 0u32;

    for k in 1..=max_k {
        let d = 1isize << (k - 1);
        let side = 1u32 << k;

        // Sibling views: east, south, south-east child corners.
        let lvl_e = m.shift2d(&level, -d, 0, DEAD);
        let lvl_s = m.shift2d(&level, 0, -d, DEAD);
        let lvl_se = m.shift2d(&level, -d, -d, DEAD);
        let st_e = stats.shifted(m, -d, 0);
        let st_s = stats.shifted(m, 0, -d);
        let st_se = stats.shifted(m, -d, -d);

        // Alignment and in-image bounds.
        let child = k as u32 - 1;
        let aligned = m.zip(&xs, &ys, move |x, y| x % side == 0 && y % side == 0);
        let fits = m.zip(&xs, &ys, move |x, y| {
            x + side <= w as u32 && y + side <= h as u32
        });
        let kids_whole = {
            let own = m.map(&level, move |l| l == child);
            let e = m.map(&lvl_e, move |l| l == child);
            let s = m.map(&lvl_s, move |l| l == child);
            let se = m.map(&lvl_se, move |l| l == child);
            let a = m.zip(&own, &e, |p, q| p && q);
            let b = m.zip(&s, &se, |p, q| p && q);
            m.zip(&a, &b, |p, q| p && q)
        };

        // Homogeneity of the combined block.
        let homog = homogeneous4(m, crit, t, &stats, &st_e, &st_s, &st_se);

        let pre = m.zip(&aligned, &fits, |a, b| a && b);
        let pre = m.zip(&pre, &kids_whole, |a, b| a && b);
        let can = m.zip(&pre, &homog, |a, b| a && b);

        if !m.any(&can) {
            break;
        }
        iterations += 1;

        // Fold statistics and bump the level where coalescing.
        stats.fold_where(m, &can, &st_e);
        stats.fold_where(m, &can, &st_s);
        stats.fold_where(m, &can, &st_se);
        let bumped = Field::constant(shape, k as u32);
        m.update_where(&mut level, &can, &bumped, |_, new| new);

        // Kill the three consumed child corners: the coalesce flag flows
        // back by the opposite shifts.
        let kill_e = m.shift2d(&can, d, 0, false);
        let kill_s = m.shift2d(&can, 0, d, false);
        let kill_se = m.shift2d(&can, d, d, false);
        let kill = m.zip3(&kill_e, &kill_s, &kill_se, |a, b, c| a || b || c);
        let dead = Field::constant(shape, DEAD);
        m.update_where(&mut level, &kill, &dead, |_, d| d);
    }

    DpSplit {
        level,
        stats,
        iterations,
        width: w,
        height: h,
    }
}

/// Criterion test over a block's four children (all fields corner-aligned
/// at the candidate block's own corner).
fn homogeneous4(
    m: &Machine,
    crit: Criterion,
    t: u32,
    own: &PixelStats,
    e: &PixelStats,
    s: &PixelStats,
    se: &PixelStats,
) -> Field<bool> {
    match crit {
        Criterion::PixelRange => {
            // Pooled extrema + range test through the shared scalar
            // kernels (the same closures the packed host split uses).
            let min1 = m.zip(&own.min, &e.min, union_lo);
            let min2 = m.zip(&s.min, &se.min, union_lo);
            let mn = m.zip(&min1, &min2, union_lo);
            let max1 = m.zip(&own.max, &e.max, union_hi);
            let max2 = m.zip(&s.max, &se.max, union_hi);
            let mx = m.zip(&max1, &max2, union_hi);
            m.zip(&mn, &mx, move |lo, hi| range_pair_satisfies(lo, hi, t))
        }
        Criterion::MeanDifference => {
            // Exact pairwise mean test via the shared cross-multiplication
            // kernel, matching the host engine's `combine_ok` bit for bit.
            let packed: Vec<Field<(u64, u64)>> = [own, e, s, se]
                .iter()
                .map(|st| m.zip(&st.sum, &st.cnt, |s, c| (s, c)))
                .collect();
            let mut ok = Field::constant(own.min.shape(), true);
            for i in 0..4 {
                for j in i + 1..4 {
                    let close = m.zip(&packed[i], &packed[j], move |a, b| {
                        // Dead corners (cnt 0) are excluded by kids_whole;
                        // accept vacuously to avoid div-by-zero concerns.
                        if a.1 == 0 || b.1 == 0 {
                            return true;
                        }
                        mean_pair_satisfies(a, b, t)
                    });
                    ok = m.zip(&ok, &close, |a, b| a && b);
                }
            }
            ok
        }
    }
}
