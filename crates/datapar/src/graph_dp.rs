//! Data-parallel graph construction (the paper's step 2).
//!
//! *"For each square region in the pixel image, a corresponding graph
//! vertex is created, and for each pair of neighboring square regions, an
//! edge is created."*
//!
//! CM Fortran arrays are statically shaped, so the paper's 1-D vertex and
//! edge arrays are sized by the *pixel grid*, not by the live region
//! count: the vertex for the square whose top-left corner is pixel `p`
//! lives in slot `p` (slots of non-corner pixels are dead), and each pixel
//! contributes one potential edge per scan direction (invalid for
//! non-boundary pixels). Activity masks — the CM's context flags — carry
//! the liveness. This static layout is what makes the merge stage's cost
//! scale with `N²/P` on the CM-2, exactly as the paper's tables show.
//!
//! A pleasant consequence: the vertex slot index *is* the canonical region
//! ID ([`rg_core::Square::id`]), so tie-break hashes agree with the host
//! engines with no translation.

use crate::fields::{PixelStats, DEAD};
use crate::split_dp::DpSplit;
use cm_sim::{Field, Machine, Shape};
use rg_core::Connectivity;

/// Machine-resident vertex and edge arrays (static, slot-indexed).
pub struct DpGraph {
    /// Number of live vertices (square regions).
    pub num_vertices: u32,
    /// Slot liveness: `true` iff the pixel is a square corner.
    pub v_alive: Field<bool>,
    /// Slot-indexed region statistics (corner-resident split output).
    pub v_stats: PixelStats,
    /// Per-pixel slot of the containing square (2-D field).
    pub sq_of: Field<u32>,
    /// Edge endpoint slots (smaller first); `K·N²` entries for `K` scan
    /// directions.
    pub e_u: Field<u32>,
    /// Edge endpoint slots (larger).
    pub e_v: Field<u32>,
    /// Structural validity of each edge slot (a real boundary crossing).
    pub e_valid: Field<bool>,
}

/// Builds the static vertex and edge arrays from a split result.
pub fn build_graph(m: &Machine, split: &DpSplit, connectivity: Connectivity) -> DpGraph {
    let w = split.width;
    let shape = split.level.shape();

    // --- vertices --------------------------------------------------------
    let corner = m.map(&split.level, |l| l != DEAD);
    let num_vertices = m.count_true(&corner) as u32;
    let v_alive = corner.clone();
    let v_stats = split.stats.clone();

    // --- per-pixel owning slot -------------------------------------------
    // Corners know their square; broadcast the descriptor
    // `(corner_x, corner_y, level)` across each square with log-stepped
    // NEWS copies. A pixel only accepts a candidate whose square contains
    // it — squares tile the image, so acceptance implies correctness, and
    // the doubling schedule is safe even when a shift crosses into a
    // neighbouring smaller square.
    const NO_SQ: (u32, u32, u32) = (0, 0, DEAD);
    let idx = m.iota(shape);
    let mut desc = {
        let packed = m.zip(&idx, &split.level, move |i, lvl| {
            (i % w as u32, i / w as u32, lvl)
        });
        m.select(&corner, &packed, &Field::constant(shape, NO_SQ))
    };
    let covers = |x: u32, y: u32, c: (u32, u32, u32)| -> bool {
        if c.2 == DEAD {
            return false;
        }
        let side = 1u32 << c.2;
        x >= c.0 && x < c.0 + side && y >= c.1 && y < c.1 + side
    };
    let max_side = split.width.max(split.height).next_power_of_two();
    for (dx, dy) in [(1isize, 0isize), (0, 1)] {
        let mut d = 1isize;
        while (d as usize) < max_side {
            let incoming = m.shift2d(&desc, d * dx, d * dy, NO_SQ);
            desc = m.zip3(&desc, &incoming, &idx, move |own, cand, i| {
                let (x, y) = (i % w as u32, i / w as u32);
                if own.2 == DEAD && covers(x, y, cand) {
                    cand
                } else {
                    own
                }
            });
            d <<= 1;
        }
    }
    let sq_of = m.map(&desc, move |c| c.1 * w as u32 + c.0);
    debug_assert!(desc.as_slice().iter().all(|&c| c.2 != DEAD));

    // --- edges -------------------------------------------------------------
    // One candidate edge per pixel per scan direction; canonicalised
    // (min, max); invalid where no boundary is crossed.
    let dirs: &[(isize, isize)] = match connectivity {
        Connectivity::Four => &[(1, 0), (0, 1)],
        Connectivity::Eight => &[(1, 0), (0, 1), (1, 1), (-1, 1)],
    };
    let mut us: Vec<u32> = Vec::with_capacity(dirs.len() * shape.len());
    let mut vs: Vec<u32> = Vec::with_capacity(dirs.len() * shape.len());
    let mut valid: Vec<bool> = Vec::with_capacity(dirs.len() * shape.len());
    for &(dx, dy) in dirs {
        let nb = m.shift2d(&sq_of, -dx, -dy, u32::MAX);
        let cand = m.zip(&sq_of, &nb, |a, b| {
            if b == u32::MAX || a == b {
                (0u32, 0u32, false)
            } else {
                (a.min(b), a.max(b), true)
            }
        });
        // Re-layout the per-direction candidates into the long edge
        // arrays (VP-set reshaping; no communication charge).
        for &(u, v, ok) in cand.as_slice() {
            us.push(u);
            vs.push(v);
            valid.push(ok);
        }
    }
    let eshape = Shape::one_d(us.len());
    DpGraph {
        num_vertices,
        v_alive,
        v_stats,
        sq_of,
        e_u: Field::from_vec(eshape, us),
        e_v: Field::from_vec(eshape, vs),
        e_valid: Field::from_vec(eshape, valid),
    }
}
