//! # rg-datapar
//!
//! The **data-parallel** implementation of split-and-merge region growing,
//! written against the `cm-sim` machine exactly as the paper's CM Fortran
//! program was written against the Connection Machine run-time: 2-D fields
//! for pixel state, 1-D fields for the graph, and nothing but elementwise
//! operations, NEWS shifts, scans, combining router traffic, and global
//! reductions.
//!
//! The same program runs under the CM-2 and CM-5 cost models (the paper
//! executed the same CM Fortran source on both machines); the simulated
//! times differ, the segmentation does not — and it is bit-identical to
//! `rg_core::segment`.
//!
//! ```
//! use cm_sim::CostModel;
//! use rg_core::Config;
//! use rg_imaging::synth;
//! use rg_datapar::segment_datapar;
//!
//! let img = synth::nested_rects(64);
//! let out = segment_datapar(&img, &Config::with_threshold(10), CostModel::cm2_8k());
//! assert_eq!(out.seg.num_regions, 2);
//! println!("simulated split time on {}: {:.3}s", out.platform, out.split_seconds);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod driver;
pub mod fields;
pub mod graph_dp;
pub mod merge_dp;
pub mod pipeline_dp;
pub mod split_dp;

pub use driver::{segment_datapar, segment_datapar_with_telemetry, DataParBackend, DataParOutcome};
pub use pipeline_dp::DataParPipeline;
