//! Shared field bundles for the data-parallel implementation.

use cm_sim::{Field, Machine};

/// Level value marking a pixel that is not a square corner (or a vertex
/// slot that is not alive).
pub const DEAD: u32 = u32::MAX;

/// "No choice" sentinel in vertex choice fields.
pub const NONE: u32 = u32::MAX;

/// Region statistics spread across four parallel fields (min, max, sum,
/// count) — the flat-array layout the paper insists on (no structs on the
/// CM, just aligned arrays).
#[derive(Debug, Clone)]
pub struct PixelStats {
    /// Minimum intensity (widened to u32).
    pub min: Field<u32>,
    /// Maximum intensity.
    pub max: Field<u32>,
    /// Intensity sum (for the mean-difference extension).
    pub sum: Field<u64>,
    /// Pixel count.
    pub cnt: Field<u64>,
}

impl PixelStats {
    /// All four fields shifted by `(dx, dy)` (NEWS moves, costed).
    pub fn shifted(&self, m: &Machine, dx: isize, dy: isize) -> PixelStats {
        PixelStats {
            min: m.shift2d(&self.min, dx, dy, u32::MAX),
            max: m.shift2d(&self.max, dx, dy, 0),
            sum: m.shift2d(&self.sum, dx, dy, 0),
            cnt: m.shift2d(&self.cnt, dx, dy, 0),
        }
    }

    /// Folds `other` into `self` where `mask` holds.
    pub fn fold_where(&mut self, m: &Machine, mask: &Field<bool>, other: &PixelStats) {
        m.update_where(&mut self.min, mask, &other.min, |a, b| a.min(b));
        m.update_where(&mut self.max, mask, &other.max, |a, b| a.max(b));
        m.update_where(&mut self.sum, mask, &other.sum, |a, b| a + b);
        m.update_where(&mut self.cnt, mask, &other.cnt, |a, b| a + b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_sim::{CostModel, Machine, Shape};

    fn machine() -> Machine {
        Machine::new(CostModel::cm2_8k())
    }

    fn stats(vals: &[(u32, u32, u64, u64)]) -> PixelStats {
        let shape = Shape::one_d(vals.len());
        PixelStats {
            min: Field::from_vec(shape, vals.iter().map(|v| v.0).collect()),
            max: Field::from_vec(shape, vals.iter().map(|v| v.1).collect()),
            sum: Field::from_vec(shape, vals.iter().map(|v| v.2).collect()),
            cnt: Field::from_vec(shape, vals.iter().map(|v| v.3).collect()),
        }
    }

    #[test]
    fn fold_where_respects_mask() {
        let m = machine();
        let mut a = stats(&[(5, 9, 14, 2), (1, 1, 1, 1)]);
        let b = stats(&[(3, 12, 15, 1), (0, 100, 100, 9)]);
        let mask = Field::from_slice(&[true, false]);
        a.fold_where(&m, &mask, &b);
        assert_eq!(a.min.as_slice(), &[3, 1]);
        assert_eq!(a.max.as_slice(), &[12, 1]);
        assert_eq!(a.sum.as_slice(), &[29, 1]);
        assert_eq!(a.cnt.as_slice(), &[3, 1]);
    }

    #[test]
    fn shifted_moves_all_four_fields() {
        let m = machine();
        let shape = Shape::two_d(2, 1);
        let s = PixelStats {
            min: Field::from_vec(shape, vec![1, 2]),
            max: Field::from_vec(shape, vec![3, 4]),
            sum: Field::from_vec(shape, vec![5, 6]),
            cnt: Field::from_vec(shape, vec![7, 8]),
        };
        let moved = s.shifted(&m, 1, 0);
        // Shift right: boundary fill flows in on the left.
        assert_eq!(moved.min.as_slice(), &[u32::MAX, 1]);
        assert_eq!(moved.max.as_slice(), &[0, 3]);
        assert_eq!(moved.sum.as_slice(), &[0, 5]);
        assert_eq!(moved.cnt.as_slice(), &[0, 7]);
    }
}
