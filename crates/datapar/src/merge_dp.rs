//! Data-parallel merge stage (the paper's steps 3–5).
//!
//! All state is flat 1-D fields: vertex statistics, canonical IDs, a
//! parent pointer per vertex, and the two edge-endpoint arrays. One
//! iteration is a fixed sequence of machine primitives:
//!
//! 1. gather endpoint statistics (router gets), compute edge weights and
//!    re-test the criterion (elementwise), de-activating failed edges;
//! 2. three cascaded combining-send minima resolve every vertex's best
//!    neighbour under `(weight, tie-key, tie-key₂, neighbour)` — the
//!    lexicographic refinement the CM's `send-with-min` supports natively;
//! 3. a gather of `choice[choice[v]]` detects mutual selections; losers
//!    (the larger dense index of each pair) send their statistics to the
//!    winners with combining sends and point their parent at the winner;
//! 4. edge endpoints relabel through the parent map (gets), self-loops
//!    de-activate, and a global OR on the remaining active edges decides
//!    whether to iterate.
//!
//! Duplicate (parallel) edges appear after relabelling and are left in
//! place — the arrays are statically sized, exactly the flat-array
//! discipline of the paper; duplicates never change a minimum.
//!
//! After the loop, parents are resolved to roots by pointer jumping
//! (`parent ← parent[parent]` until fixpoint), and per-pixel labels come
//! from one final gather through the pixel→vertex field.

use crate::fields::NONE;
use crate::graph_dp::DpGraph;
use cm_sim::{Field, Machine, Shape};
use rg_core::kernels::{
    mean_pair_satisfies, mean_pair_weight, range_pair_satisfies, range_pair_weight, union_hi,
    union_lo,
};
use rg_core::merge::tie_key;
use rg_core::{Config, Criterion, MergeSummary, TieBreak};

/// Result of the data-parallel merge stage.
pub struct DpMerge {
    /// Per-pixel representative vertex (dense index), machine-resident.
    pub pixel_rep: Field<u32>,
    /// Stage summary (iterations, merges, final region count).
    pub summary: MergeSummary,
}

/// Edge-endpoint views of a vertex field.
fn gather_ends<T: cm_sim::Elem>(
    m: &Machine,
    table: &Field<T>,
    e_u: &Field<u32>,
    e_v: &Field<u32>,
    default: T,
) -> (Field<T>, Field<T>) {
    (
        m.get(table, e_u, None, default),
        m.get(table, e_v, None, default),
    )
}

/// Runs the merge loop.
pub fn merge_dp(m: &Machine, g: &DpGraph, config: &Config) -> DpMerge {
    // Vertex arrays are slot-indexed over the whole pixel grid (dead slots
    // masked), and edge arrays are K·N² long — the CM Fortran static
    // layout. Reshape vertex state to 1-D for the graph phase.
    let nv = g.v_alive.len();
    let vshape = Shape::one_d(nv);
    let as_1d_u32 = |f: &Field<u32>| Field::from_vec(vshape, f.as_slice().to_vec());
    let as_1d_u64 = |f: &Field<u64>| Field::from_vec(vshape, f.as_slice().to_vec());
    let mut v_min = as_1d_u32(&g.v_stats.min);
    let mut v_max = as_1d_u32(&g.v_stats.max);
    let mut v_sum = as_1d_u64(&g.v_stats.sum);
    let mut v_cnt = as_1d_u64(&g.v_stats.cnt);
    // The slot index is the canonical region ID.
    let v_id = m.map(&m.iota(vshape), |i| i as u64);
    let mut parent = m.iota(vshape);

    let e_u0 = g.e_u.clone();
    let e_v0 = g.e_v.clone();
    let mut e_u = e_u0;
    let mut e_v = e_v0;
    let mut e_active = g.e_valid.clone();

    let crit = config.criterion;
    let t = config.threshold;

    // Initial de-activation (step 2's "edges that do not satisfy the
    // homogeneity criterion are de-activated").
    refresh_active(
        m,
        crit,
        t,
        &v_min,
        &v_max,
        &v_sum,
        &v_cnt,
        &e_u,
        &e_v,
        &mut e_active,
    );

    let mut iterations = 0u32;
    let mut merges_per_iteration = Vec::new();
    let mut stalls = 0u32;
    let vertex_self = m.iota(vshape);

    while m.any(&e_active) {
        let used_fallback =
            matches!(config.tie_break, TieBreak::Random { .. }) && stalls >= config.max_stall;
        let policy = if used_fallback {
            TieBreak::SmallestId
        } else {
            config.tie_break
        };

        // ---- step 3: best-neighbour selection -------------------------
        let (min_u, min_v) = gather_ends(m, &v_min, &e_u, &e_v, u32::MAX);
        let (max_u, max_v) = gather_ends(m, &v_max, &e_u, &e_v, 0);
        let (sum_u, sum_v) = gather_ends(m, &v_sum, &e_u, &e_v, 0);
        let (cnt_u, cnt_v) = gather_ends(m, &v_cnt, &e_u, &e_v, 0);
        let (id_u, id_v) = gather_ends(m, &v_id, &e_u, &e_v, 0);

        let w = match crit {
            Criterion::PixelRange => {
                let lo = m.zip(&min_u, &min_v, union_lo);
                let hi = m.zip(&max_u, &max_v, union_hi);
                m.zip(&lo, &hi, range_pair_weight)
            }
            Criterion::MeanDifference => {
                let a = m.zip(&sum_u, &cnt_u, |s, c| (s, c));
                let b = m.zip(&sum_v, &cnt_v, |s, c| (s, c));
                m.zip(&a, &b, mean_pair_weight)
            }
        };

        // Phase 1: per-vertex minimum weight (both edge directions).
        let mut best_w = Field::constant(vshape, u64::MAX);
        m.send_combine(&e_u, &w, Some(&e_active), &mut best_w, u64::min);
        m.send_combine(&e_v, &w, Some(&e_active), &mut best_w, u64::min);

        // Phase 2: among weight-ties, minimum primary tie key.
        let (bw_u, bw_v) = gather_ends(m, &best_w, &e_u, &e_v, u64::MAX);
        let tie_u = {
            let hit = m.zip(&w, &bw_u, |a, b| a == b);
            m.zip(&hit, &e_active, |a, b| a && b)
        };
        let tie_v = {
            let hit = m.zip(&w, &bw_v, |a, b| a == b);
            m.zip(&hit, &e_active, |a, b| a && b)
        };
        let iter = iterations;
        let k_uv = m.zip(&id_u, &id_v, move |cu, cv| tie_key(policy, iter, cu, cv));
        let k_vu = m.zip(&id_v, &id_u, move |cv, cu| tie_key(policy, iter, cv, cu));
        let k0_uv = m.map(&k_uv, |k| k.0);
        let k0_vu = m.map(&k_vu, |k| k.0);
        let mut best_k0 = Field::constant(vshape, u64::MAX);
        m.send_combine(&e_u, &k0_uv, Some(&tie_u), &mut best_k0, u64::min);
        m.send_combine(&e_v, &k0_vu, Some(&tie_v), &mut best_k0, u64::min);

        // Phase 3: among (weight, k0) ties, minimum secondary key.
        let (bk0_u, bk0_v) = gather_ends(m, &best_k0, &e_u, &e_v, u64::MAX);
        let tie2_u = m.zip3(&tie_u, &k0_uv, &bk0_u, |t, k, b| t && k == b);
        let tie2_v = m.zip3(&tie_v, &k0_vu, &bk0_v, |t, k, b| t && k == b);
        let k1_uv = m.map(&k_uv, |k| k.1);
        let k1_vu = m.map(&k_vu, |k| k.1);
        let mut best_k1 = Field::constant(vshape, u64::MAX);
        m.send_combine(&e_u, &k1_uv, Some(&tie2_u), &mut best_k1, u64::min);
        m.send_combine(&e_v, &k1_vu, Some(&tie2_v), &mut best_k1, u64::min);

        // Phase 4: among full ties, minimum neighbour index = the choice.
        let (bk1_u, bk1_v) = gather_ends(m, &best_k1, &e_u, &e_v, u64::MAX);
        let tie3_u = m.zip3(&tie2_u, &k1_uv, &bk1_u, |t, k, b| t && k == b);
        let tie3_v = m.zip3(&tie2_v, &k1_vu, &bk1_v, |t, k, b| t && k == b);
        let mut choice = Field::constant(vshape, NONE);
        m.send_combine(&e_u, &e_v, Some(&tie3_u), &mut choice, u32::min);
        m.send_combine(&e_v, &e_u, Some(&tie3_v), &mut choice, u32::min);

        // ---- step 3 (cont.): mutual selection --------------------------
        let has_choice = m.map(&choice, |c| c != NONE);
        let safe_choice = m.select(&has_choice, &choice, &vertex_self);
        let back = m.get(&choice, &safe_choice, Some(&has_choice), NONE);
        let mutual = m.zip3(&back, &vertex_self, &has_choice, |b, s, h| h && b == s);
        // Loser: the larger dense index of a mutual pair.
        let loser = {
            let bigger = m.zip(&vertex_self, &choice, |s, c| s > c);
            m.zip(&mutual, &bigger, |a, b| a && b)
        };
        let merges = m.count_true(&loser) as u32;

        // ---- step 4: update vertices ----------------------------------
        // Rust needs the read snapshot split from the written array; on
        // the CM the router reads source VPs while writing destinations.
        let (src_min, src_max) = (v_min.clone(), v_max.clone());
        let (src_sum, src_cnt) = (v_sum.clone(), v_cnt.clone());
        m.send_combine(&choice, &src_min, Some(&loser), &mut v_min, u32::min);
        m.send_combine(&choice, &src_max, Some(&loser), &mut v_max, u32::max);
        m.send_combine(&choice, &src_sum, Some(&loser), &mut v_sum, |a, b| a + b);
        m.send_combine(&choice, &src_cnt, Some(&loser), &mut v_cnt, |a, b| a + b);
        m.update_where(&mut parent, &loser, &choice, |_, c| c);

        // ---- step 4 (cont.): update edges ------------------------------
        // One level of indirection suffices: edges always reference
        // current representatives, and a representative never loses to a
        // larger index within the same iteration.
        let rep = m.select(&loser, &choice, &vertex_self);
        e_u = m.get(&rep, &e_u, None, 0);
        e_v = m.get(&rep, &e_v, None, 0);
        let not_loop = m.zip(&e_u, &e_v, |a, b| a != b);
        e_active = m.zip(&e_active, &not_loop, |a, b| a && b);
        refresh_active(
            m,
            crit,
            t,
            &v_min,
            &v_max,
            &v_sum,
            &v_cnt,
            &e_u,
            &e_v,
            &mut e_active,
        );

        iterations += 1;
        merges_per_iteration.push(merges);
        if merges == 0 {
            stalls += 1;
        } else {
            stalls = 0;
        }
    }

    // ---- resolve parents by pointer jumping -----------------------------
    loop {
        let hop = m.get(&parent, &parent, None, 0);
        let changed = m.zip(&parent, &hop, |a, b| a != b);
        parent = hop;
        if !m.any(&changed) {
            break;
        }
    }
    let is_root = m.zip(&parent, &vertex_self, |p, s| p == s);
    let alive_1d = Field::from_vec(vshape, g.v_alive.as_slice().to_vec());
    let roots = m.zip(&is_root, &alive_1d, |r, a| r && a);
    let num_regions = m.count_true(&roots);

    // Per-pixel representative: one gather through the pixel→vertex field.
    let pixel_rep = m.get(&parent, &g.sq_of, None, 0);

    DpMerge {
        pixel_rep,
        summary: MergeSummary {
            iterations,
            merges_per_iteration,
            num_regions,
        },
    }
}

/// Re-tests the criterion on every edge and de-activates failures.
#[allow(clippy::too_many_arguments)]
fn refresh_active(
    m: &Machine,
    crit: Criterion,
    t: u32,
    v_min: &Field<u32>,
    v_max: &Field<u32>,
    v_sum: &Field<u64>,
    v_cnt: &Field<u64>,
    e_u: &Field<u32>,
    e_v: &Field<u32>,
    e_active: &mut Field<bool>,
) {
    let sat = match crit {
        Criterion::PixelRange => {
            let (min_u, min_v) = (
                m.get(v_min, e_u, None, u32::MAX),
                m.get(v_min, e_v, None, u32::MAX),
            );
            let (max_u, max_v) = (m.get(v_max, e_u, None, 0), m.get(v_max, e_v, None, 0));
            let lo = m.zip(&min_u, &min_v, union_lo);
            let hi = m.zip(&max_u, &max_v, union_hi);
            m.zip(&lo, &hi, move |l, h| range_pair_satisfies(l, h, t))
        }
        Criterion::MeanDifference => {
            let a = m.zip(
                &m.get(v_sum, e_u, None, 0),
                &m.get(v_cnt, e_u, None, 0),
                |s, c| (s, c),
            );
            let b = m.zip(
                &m.get(v_sum, e_v, None, 0),
                &m.get(v_cnt, e_v, None, 0),
                |s, c| (s, c),
            );
            m.zip(&a, &b, move |a, b| mean_pair_satisfies(a, b, t))
        }
    };
    *e_active = m.zip(e_active, &sat, |a, b| a && b);
}
