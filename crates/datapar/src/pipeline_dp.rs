//! [`Pipeline`] adapter for the data-parallel engine.
//!
//! Wraps a [`DataParBackend`] behind the engine-agnostic
//! [`rg_core::Pipeline`] interface so the batch runtime
//! ([`rg_core::batch`]) can stream images through a simulated CM alongside
//! the host engines — every image goes through the same
//! [`rg_core::driver::run_driver`] loop as the one-shot entry points. The
//! simulated machine rebuilds its fields per image (the virtual-processor
//! sets are part of the simulation), so unlike [`rg_core::HostPipeline`]
//! this adapter does **not** claim zero steady-state allocation — it
//! reuses the plan and recycles the output buffer only.

use crate::driver::DataParBackend;
use cm_sim::CostModel;
use rg_core::driver::run_driver;
use rg_core::pipeline::{ExecutionPlan, Pipeline};
use rg_core::telemetry::Telemetry;
use rg_core::{Config, Segmentation};
use rg_imaging::Image;

/// A reusable data-parallel pipeline: one simulated cost model + config,
/// streamed over many images.
#[derive(Debug)]
pub struct DataParPipeline {
    config: Config,
    model: CostModel,
    engine: String,
    plan: Option<ExecutionPlan>,
}

impl DataParPipeline {
    /// Creates a pipeline running on the simulated machine `model`.
    pub fn new(config: Config, model: CostModel) -> Self {
        Self {
            config,
            model,
            engine: format!("datapar:{}", model.name),
            plan: None,
        }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }
}

impl Pipeline for DataParPipeline {
    fn engine(&self) -> &str {
        &self.engine
    }

    fn plan(&self) -> Option<&ExecutionPlan> {
        self.plan.as_ref()
    }

    fn run_into(&mut self, img: &Image<u8>, tel: &mut dyn Telemetry, out: &mut Segmentation) {
        let (w, h) = (img.width(), img.height());
        let stale = match &self.plan {
            Some(p) => !p.matches(w, h, &self.config),
            None => true,
        };
        if stale {
            self.plan = Some(ExecutionPlan::for_shape(w, h, &self.config));
        }
        let mut backend = DataParBackend::new(img, &self.config, self.model);
        run_driver(&mut backend, tel, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rg_core::telemetry::NullTelemetry;
    use rg_core::{run_batch_collect, segment, BatchOptions};
    use rg_imaging::synth;

    #[test]
    fn pipeline_matches_direct_driver_and_host() {
        let cfg = Config::with_threshold(10);
        let imgs = [synth::nested_rects(64), synth::rect_collection(64)];
        let mut pipe = DataParPipeline::new(cfg, CostModel::cm2_8k());
        assert_eq!(pipe.engine(), "datapar:CM-2 (8K procs)");
        assert!(pipe.plan().is_none());
        for img in &imgs {
            let seg = pipe.run(img, &mut NullTelemetry);
            assert_eq!(seg, segment(img, &cfg));
        }
        assert!(pipe.plan().is_some());
    }

    #[test]
    fn batch_streams_through_simulated_machine() {
        let cfg = Config::with_threshold(10);
        let imgs: Vec<_> = (0..3).map(|s| synth::random_rects(32, 32, 5, s)).collect();
        let (results, summary) = run_batch_collect(
            &imgs,
            &BatchOptions::new(),
            || Box::new(DataParPipeline::new(cfg, CostModel::cm2_8k())),
            &mut NullTelemetry,
        );
        assert_eq!(summary.images, 3);
        for (img, got) in imgs.iter().zip(&results) {
            assert_eq!(got, &segment(img, &cfg));
        }
    }
}
