//! Classic sequential region growing (raster-order seeded growth).
//!
//! The technique the paper's reference \[10\] (Zucker, *Region growing:
//! Childhood and adolescence*, 1976) surveys: take the first unassigned
//! pixel in raster order as a seed, grow its region by repeatedly
//! absorbing any frontier pixel that keeps the region's homogeneity
//! criterion satisfied, and move to the next seed when the region can no
//! longer grow.
//!
//! This is the inherently sequential baseline: the result depends on the
//! scan order (a pixel absorbed early can block a "better" region later),
//! which is exactly the order-dependence the split-and-merge formulation
//! tames. On flat-contrast scenes the partitions coincide; on gradients
//! they legitimately differ (see `tests/baseline_agreement.rs`).

use rg_core::labels::compact_first_appearance;
use rg_core::{Config, Connectivity, RegionStats};
use rg_imaging::{Image, Intensity};
use std::collections::VecDeque;

/// A seeded-growth segmentation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeededSegmentation {
    /// Per-pixel compact region label.
    pub labels: Vec<u32>,
    /// Number of regions grown.
    pub num_regions: usize,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
}

/// Grows regions from raster-order seeds under `config`'s criterion,
/// threshold, and connectivity.
pub fn grow_regions<P: Intensity>(img: &Image<P>, config: &Config) -> SeededSegmentation {
    let (w, h) = (img.width(), img.height());
    let mut assignment: Vec<u32> = vec![u32::MAX; w * h];
    let mut region_id = 0u32;
    let mut frontier: VecDeque<usize> = VecDeque::new();

    let neighbours = |i: usize, out: &mut Vec<usize>| {
        let (x, y) = (i % w, i / w);
        out.clear();
        if x > 0 {
            out.push(i - 1);
        }
        if x + 1 < w {
            out.push(i + 1);
        }
        if y > 0 {
            out.push(i - w);
        }
        if y + 1 < h {
            out.push(i + w);
        }
        if config.connectivity == Connectivity::Eight {
            if x > 0 && y > 0 {
                out.push(i - w - 1);
            }
            if x + 1 < w && y > 0 {
                out.push(i - w + 1);
            }
            if x > 0 && y + 1 < h {
                out.push(i + w - 1);
            }
            if x + 1 < w && y + 1 < h {
                out.push(i + w + 1);
            }
        }
    };

    let mut nbuf = Vec::with_capacity(8);
    for seed in 0..w * h {
        if assignment[seed] != u32::MAX {
            continue;
        }
        let mut stats = RegionStats::of_pixel(img.pixels()[seed]);
        assignment[seed] = region_id;
        frontier.clear();
        frontier.push_back(seed);
        while let Some(i) = frontier.pop_front() {
            neighbours(i, &mut nbuf);
            for &j in &nbuf {
                if assignment[j] != u32::MAX {
                    continue;
                }
                let cand = RegionStats::of_pixel(img.pixels()[j]);
                if config.criterion.satisfies(&stats, &cand, config.threshold) {
                    stats = stats.fold(cand);
                    assignment[j] = region_id;
                    frontier.push_back(j);
                }
            }
        }
        region_id += 1;
    }

    let (labels, num_regions) = compact_first_appearance(&assignment);
    SeededSegmentation {
        labels,
        num_regions,
        width: w,
        height: h,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rg_imaging::synth;

    #[test]
    fn flat_scene_matches_flat_components() {
        let img = synth::rect_collection(64);
        let seg = grow_regions(&img, &Config::with_threshold(10));
        assert_eq!(seg.num_regions, 7);
    }

    #[test]
    fn threshold_zero_equals_components() {
        let img = synth::random_rects(32, 32, 5, 3);
        let seg = grow_regions(&img, &Config::with_threshold(0));
        let ccl = crate::ccl::label_components(&img, Connectivity::Four);
        assert_eq!(seg.labels, ccl.labels);
        assert_eq!(seg.num_regions, ccl.num_components);
    }

    #[test]
    fn gradient_shows_order_dependence() {
        // The chaining pathology: a smooth ramp is absorbed greedily from
        // the top-left until the range budget is spent, producing diagonal
        // bands whose count depends on the threshold.
        let img = synth::gradient(32, 32, 1);
        let seg = grow_regions(&img, &Config::with_threshold(10));
        assert!(seg.num_regions > 1);
        assert!(seg.num_regions < 32 * 32);
        // First band contains the seed corner.
        assert_eq!(seg.labels[0], 0);
    }

    #[test]
    fn regions_are_homogeneous() {
        let img = synth::uniform_noise(48, 48, 50, 200, 5);
        let t = 30;
        let seg = grow_regions(&img, &Config::with_threshold(t));
        // Recompute per-region ranges.
        let mut lo = vec![u8::MAX; seg.num_regions];
        let mut hi = vec![u8::MIN; seg.num_regions];
        for (i, &l) in seg.labels.iter().enumerate() {
            let p = img.pixels()[i];
            lo[l as usize] = lo[l as usize].min(p);
            hi[l as usize] = hi[l as usize].max(p);
        }
        for r in 0..seg.num_regions {
            assert!((hi[r] - lo[r]) as u32 <= t);
        }
    }

    #[test]
    fn eight_connectivity_grows_across_diagonals() {
        let img = synth::checkerboard(4, 1, 10, 12); // contrast 2
        let cfg4 = Config::with_threshold(0);
        let cfg8 = Config::with_threshold(0).connectivity(Connectivity::Eight);
        assert_eq!(grow_regions(&img, &cfg4).num_regions, 16);
        assert_eq!(grow_regions(&img, &cfg8).num_regions, 2);
    }
}
