//! # rg-baselines
//!
//! Sequential baseline algorithms for the region-growing reproduction —
//! the approaches the paper positions itself against:
//!
//! * [`ccl`] — **connected component labeling** (two-pass, union-find):
//!   the T = 0 special case of region growing and the subject of the
//!   paper's reference \[1\] (Alnuweiri & Prasanna 1992);
//! * [`seeded`] — **classic pixel-by-pixel region growing** in raster
//!   order (the "childhood and adolescence" techniques surveyed by the
//!   paper's reference \[10\], Zucker 1976): grow a region from each
//!   unvisited seed by absorbing any neighbouring pixel that keeps the
//!   pixel range within the threshold;
//! * [`hp`] — the original **Horowitz–Pavlidis directed split-and-merge**
//!   (the paper's reference \[5\], 1974): top-down quadtree splitting
//!   followed by *greedy sequential* merging — unlike the paper's
//!   parallel mutual-choice merge, one merge happens at a time, in
//!   deterministic scan order.
//!
//! All three produce valid segmentations under
//! [`rg_core::verify_segmentation`]'s connectivity and homogeneity
//! invariants (maximality too, for the merging variants), and on
//! flat-contrast scenes they agree with the parallel algorithm's region
//! counts — the comparisons live in `tests/` and in the
//! `baseline_comparison` bench/example.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ccl;
pub mod hp;
pub mod seeded;
