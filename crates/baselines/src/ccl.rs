//! Connected component labeling (CCL): two-pass algorithm with union-find.
//!
//! Labels maximal connected groups of pixels of *equal* intensity — the
//! `T = 0` case of region growing, and the problem the paper cites as the
//! closest well-studied relative (Alnuweiri & Prasanna, IEEE TPAMI 1992).
//!
//! First pass: scan in raster order, union each pixel with its already
//! visited equal-intensity neighbours (west/north for 4-connectivity,
//! plus north-west/north-east for 8). Second pass: resolve roots and
//! compact labels by first appearance — the same canonical numbering the
//! rest of the workspace uses, so results compare directly.

use rg_core::labels::compact_first_appearance;
use rg_core::Connectivity;
use rg_dsu::DisjointSets;
use rg_imaging::{Image, Intensity};

/// A connected-component labeling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// Per-pixel compact component label (first-appearance order).
    pub labels: Vec<u32>,
    /// Number of components.
    pub num_components: usize,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
}

/// Labels equal-intensity connected components.
pub fn label_components<P: Intensity>(img: &Image<P>, connectivity: Connectivity) -> Components {
    let (w, h) = (img.width(), img.height());
    let mut dsu = DisjointSets::new(w * h);
    for y in 0..h {
        let row = img.row(y);
        for x in 0..w {
            let i = (y * w + x) as u32;
            let v = row[x];
            if x > 0 && row[x - 1] == v {
                dsu.union(i, i - 1);
            }
            if y > 0 {
                let above = img.row(y - 1);
                if above[x] == v {
                    dsu.union(i, i - w as u32);
                }
                if connectivity == Connectivity::Eight {
                    if x > 0 && above[x - 1] == v {
                        dsu.union(i, i - w as u32 - 1);
                    }
                    if x + 1 < w && above[x + 1] == v {
                        dsu.union(i, i - w as u32 + 1);
                    }
                }
            }
        }
    }
    let roots: Vec<u32> = (0..(w * h) as u32).map(|i| dsu.find(i)).collect();
    let (labels, num_components) = compact_first_appearance(&roots);
    Components {
        labels,
        num_components,
        width: w,
        height: h,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rg_imaging::synth;

    #[test]
    fn uniform_image_is_one_component() {
        let img: Image<u8> = Image::new(8, 8, 5);
        let c = label_components(&img, Connectivity::Four);
        assert_eq!(c.num_components, 1);
        assert!(c.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn checkerboard_components() {
        let img = synth::checkerboard(4, 1, 0, 255);
        assert_eq!(
            label_components(&img, Connectivity::Four).num_components,
            16
        );
        // With 8-connectivity the two colours connect diagonally: 2 parts.
        assert_eq!(
            label_components(&img, Connectivity::Eight).num_components,
            2
        );
    }

    #[test]
    fn paper_images_flat_counts() {
        for (pi, n) in [
            (synth::PaperImage::Image1, 2),
            (synth::PaperImage::Image2, 7),
            (synth::PaperImage::Image3, 11),
            (synth::PaperImage::Image6, 4),
        ] {
            let img = pi.generate();
            let c = label_components(&img, Connectivity::Four);
            assert_eq!(c.num_components, n, "{pi:?}");
        }
    }

    #[test]
    fn vertical_stripes() {
        let img: Image<u8> = Image::from_fn(6, 3, |x, _| if x % 2 == 0 { 0 } else { 100 });
        let c = label_components(&img, Connectivity::Four);
        assert_eq!(c.num_components, 6);
        // Labels are canonical: first appearance in raster order.
        assert_eq!(&c.labels[0..6], &[0, 1, 2, 3, 4, 5]);
    }
}
