//! Horowitz–Pavlidis directed split-and-merge (the paper's reference \[5\]).
//!
//! The 1974 original that the CM paper parallelises:
//!
//! 1. **Split** (top-down): starting from the whole image, recursively
//!    quadrisect any block violating the homogeneity criterion, down to
//!    single pixels. (The CM paper inverts this into a bottom-up coalesce;
//!    the resulting quadtree leaves are identical, which
//!    `tests/baseline_agreement.rs` asserts.)
//! 2. **Merge** (greedy, sequential): repeatedly scan the adjacent region
//!    pairs in deterministic (smaller-ID-first) order and merge the first
//!    pair that satisfies the criterion, until no pair does. One merge at
//!    a time — the serial baseline whose step count the parallel
//!    mutual-choice merge collapses by a factor of the average
//!    merges-per-iteration.

use rg_core::graph::adjacent_label_pairs;
use rg_core::labels::compact_first_appearance;
use rg_core::{Config, RegionStats};
use rg_dsu::DisjointSets;
use rg_imaging::{Image, Intensity};

/// A Horowitz–Pavlidis segmentation with its work counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HpSegmentation {
    /// Per-pixel compact region label.
    pub labels: Vec<u32>,
    /// Number of regions.
    pub num_regions: usize,
    /// Quadtree leaves produced by the top-down split.
    pub num_leaves: usize,
    /// Individual merge steps performed (one pair each — the quantity the
    /// parallel algorithm batches into iterations).
    pub merge_steps: usize,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
}

/// Runs top-down split followed by greedy sequential merging.
pub fn split_and_merge<P: Intensity>(img: &Image<P>, config: &Config) -> HpSegmentation {
    let (w, h) = (img.width(), img.height());

    // ---- top-down split ---------------------------------------------------
    // Work on the enclosing power-of-two square; emit leaf blocks clipped
    // to the image.
    let side = w.max(h).next_power_of_two();
    let mut leaf_of = vec![u32::MAX; w * h];
    let mut stats: Vec<RegionStats<P>> = Vec::new();
    let mut stack = vec![(0usize, 0usize, side)];
    while let Some((x0, y0, s)) = stack.pop() {
        if x0 >= w || y0 >= h {
            continue;
        }
        let x1 = (x0 + s).min(w);
        let y1 = (y0 + s).min(h);
        // Block statistics over the clipped area.
        let mut acc = RegionStats::of_pixel(img.get(x0, y0));
        acc.count = 0;
        acc.sum = 0;
        let mut first = true;
        for y in y0..y1 {
            for x in x0..x1 {
                let p = RegionStats::of_pixel(img.get(x, y));
                acc = if first { p } else { acc.fold(p) };
                first = false;
            }
        }
        // A block is accepted when whole-in-image and homogeneous (the
        // criterion's single-region form), or when it is a single pixel.
        let whole = x0 + s <= w && y0 + s <= h;
        let homogeneous = config.criterion.combine_ok(&[acc], config.threshold);
        if s == 1 || (whole && homogeneous) {
            let id = stats.len() as u32;
            stats.push(acc);
            for y in y0..y1 {
                for cell in &mut leaf_of[y * w + x0..y * w + x1] {
                    *cell = id;
                }
            }
        } else {
            let half = s / 2;
            stack.push((x0, y0, half));
            stack.push((x0 + half, y0, half));
            stack.push((x0, y0 + half, half));
            stack.push((x0 + half, y0 + half, half));
        }
    }
    let num_leaves = stats.len();

    // ---- greedy sequential merge ------------------------------------------
    let mut dsu = DisjointSets::new(num_leaves);
    let mut pairs = adjacent_label_pairs(&leaf_of, w, h, config.connectivity, false);
    let mut merge_steps = 0usize;
    loop {
        let mut merged_any = false;
        // One scan pass: merge every pair that currently satisfies the
        // criterion (re-resolved through the union-find as we go).
        for &(a, b) in &pairs {
            let ra = dsu.find(a);
            let rb = dsu.find(b);
            if ra == rb {
                continue;
            }
            if config.criterion.satisfies(
                &stats[ra as usize],
                &stats[rb as usize],
                config.threshold,
            ) {
                let folded = stats[ra as usize].fold(stats[rb as usize]);
                dsu.union_min_rep(ra, rb);
                let rep = dsu.find(ra);
                stats[rep as usize] = folded;
                merge_steps += 1;
                merged_any = true;
            }
        }
        if !merged_any {
            break;
        }
        // Relabel and dedup the pair list between passes.
        for p in pairs.iter_mut() {
            let (a, b) = (dsu.find(p.0), dsu.find(p.1));
            *p = (a.min(b), a.max(b));
        }
        pairs.sort_unstable();
        pairs.dedup();
        pairs.retain(|&(a, b)| a != b);
    }

    let raw: Vec<u32> = leaf_of.iter().map(|&l| dsu.find(l)).collect();
    let (labels, num_regions) = compact_first_appearance(&raw);
    HpSegmentation {
        labels,
        num_regions,
        num_leaves,
        merge_steps,
        width: w,
        height: h,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rg_imaging::synth;

    #[test]
    fn figure1_leaves_match_bottom_up_split() {
        let img = synth::figure1_image();
        let cfg = Config::with_threshold(3);
        let hp = split_and_merge(&img, &cfg);
        let bu = rg_core::split(&img, &cfg);
        assert_eq!(hp.num_leaves, bu.num_squares());
        assert_eq!(hp.num_leaves, 7);
    }

    #[test]
    fn figure1_final_regions() {
        let img = synth::figure1_image();
        let hp = split_and_merge(&img, &Config::with_threshold(3));
        assert_eq!(hp.num_regions, 2);
        assert!(hp.merge_steps >= 5); // 7 leaves -> 2 regions
    }

    #[test]
    fn paper_images_region_counts() {
        for (pi, n) in [
            (synth::PaperImage::Image1, 2usize),
            (synth::PaperImage::Image2, 7),
        ] {
            let img = pi.generate();
            let hp = split_and_merge(&img, &Config::with_threshold(10));
            assert_eq!(hp.num_regions, n, "{pi:?}");
        }
    }

    #[test]
    fn merge_steps_equal_leaves_minus_regions() {
        let img = synth::random_rects(48, 48, 6, 11);
        let hp = split_and_merge(&img, &Config::with_threshold(25));
        assert_eq!(hp.merge_steps, hp.num_leaves - hp.num_regions);
    }

    #[test]
    fn uniform_image_single_leaf() {
        let img: Image<u8> = Image::new(16, 16, 3);
        let hp = split_and_merge(&img, &Config::with_threshold(0));
        assert_eq!(hp.num_leaves, 1);
        assert_eq!(hp.num_regions, 1);
        assert_eq!(hp.merge_steps, 0);
    }
}
