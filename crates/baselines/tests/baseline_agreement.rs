//! Agreement and divergence between the baselines and the paper's
//! parallel split-and-merge algorithm.

use proptest::prelude::*;
use rg_baselines::{ccl, hp, seeded};
use rg_core::labels::same_partition;
use rg_core::{segment, split, Config, Connectivity};
use rg_imaging::synth;

#[test]
fn all_algorithms_agree_on_flat_contrast_scenes() {
    // When every pair of distinct intensities differs by more than T, the
    // partition is unique: flat connected components. Every algorithm must
    // find it.
    for pi in [
        synth::PaperImage::Image1,
        synth::PaperImage::Image2,
        synth::PaperImage::Image3,
    ] {
        let img = pi.generate();
        let cfg = Config::with_threshold(10);
        let sm = segment(&img, &cfg);
        let grown = seeded::grow_regions(&img, &cfg);
        let hp_seg = hp::split_and_merge(&img, &cfg);
        let comps = ccl::label_components(&img, Connectivity::Four);
        assert_eq!(sm.num_regions, comps.num_components, "{pi:?}");
        assert!(same_partition(&sm.labels, &grown.labels), "{pi:?} seeded");
        assert!(same_partition(&sm.labels, &hp_seg.labels), "{pi:?} hp");
        assert!(same_partition(&sm.labels, &comps.labels), "{pi:?} ccl");
    }
}

#[test]
fn hp_merge_steps_dwarf_parallel_iterations() {
    // The point of the parallel formulation: HP performs one merge per
    // step; the mutual-choice merge performs many per iteration.
    let img = synth::circle_collection(128);
    let cfg = Config::with_threshold(10);
    let sm = segment(&img, &cfg);
    let hp_seg = hp::split_and_merge(&img, &cfg);
    assert_eq!(sm.num_regions, hp_seg.num_regions);
    assert!(
        hp_seg.merge_steps as u32 > 10 * sm.merge_iterations,
        "hp {} steps vs parallel {} iterations",
        hp_seg.merge_steps,
        sm.merge_iterations
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hp_leaves_equal_bottom_up_squares(
        seed in 0u64..10_000,
        w in 8usize..48,
        h in 8usize..48,
        count in 0usize..8,
        t in 0u32..100,
    ) {
        // Top-down (Horowitz-Pavlidis) and bottom-up (the paper) quadtree
        // decomposition produce the same leaves under the pixel-range
        // criterion.
        let img = synth::random_rects(w, h, count, seed);
        let cfg = Config::with_threshold(t);
        let hp_seg = hp::split_and_merge(&img, &cfg);
        let bu = split(&img, &cfg);
        prop_assert_eq!(hp_seg.num_leaves, bu.num_squares());
    }

    #[test]
    fn ccl_equals_threshold_zero_segmentation(
        seed in 0u64..10_000,
        w in 4usize..40,
        h in 4usize..40,
        count in 0usize..8,
    ) {
        let img = synth::random_rects(w, h, count, seed);
        let cfg = Config::with_threshold(0);
        let sm = segment(&img, &cfg);
        let comps = ccl::label_components(&img, Connectivity::Four);
        prop_assert_eq!(&sm.labels, &comps.labels);
        prop_assert_eq!(sm.num_regions, comps.num_components);
    }

    #[test]
    fn seeded_regions_never_fewer_than_unique_partition_bound(
        seed in 0u64..10_000,
        w in 8usize..40,
        h in 8usize..40,
        count in 0usize..6,
        t in 0u32..60,
    ) {
        // Any valid segmentation has at least as many regions as the
        // number of flat components mergeable into each other... the
        // cheap sound check: seeded growth can never produce more regions
        // than pixels or fewer than 1, and its region count at T is at
        // most the count at 0 (absorbing more can only reduce seeds).
        let img = synth::random_rects(w, h, count, seed);
        let at_t = seeded::grow_regions(&img, &Config::with_threshold(t));
        let at_0 = seeded::grow_regions(&img, &Config::with_threshold(0));
        prop_assert!(at_t.num_regions >= 1);
        prop_assert!(at_t.num_regions <= at_0.num_regions);
    }
}

#[test]
fn metrics_quantify_agreement_and_divergence() {
    use rg_core::metrics::{rand_index, variation_of_information};
    // Flat-contrast scene: all algorithms produce the identical partition,
    // so the metrics sit at their ideal values.
    let img = synth::rect_collection(64);
    let cfg = Config::with_threshold(10);
    let sm = segment(&img, &cfg);
    let grown = seeded::grow_regions(&img, &cfg);
    assert_eq!(rand_index(&sm.labels, &grown.labels), 1.0);
    assert!(variation_of_information(&sm.labels, &grown.labels) < 1e-12);

    // Gradient scene: order-dependence makes seeded growth drift from the
    // split-and-merge partition — the metrics must register a real but
    // bounded difference.
    let ramp = synth::gradient(64, 64, 1);
    let cfg = Config::with_threshold(12);
    let sm = segment(&ramp, &cfg);
    let grown = seeded::grow_regions(&ramp, &cfg);
    let ri = rand_index(&sm.labels, &grown.labels);
    let vi = variation_of_information(&sm.labels, &grown.labels);
    assert!(ri < 1.0, "partitions should differ on a ramp");
    assert!(ri > 0.5, "but they should still be broadly similar");
    assert!(vi > 0.0);
}
