//! Chaos differential suite: the message-passing engine under seeded
//! deterministic fault injection.
//!
//! The contract (the tentpole property of the fault subsystem):
//!
//! - **Survivable** fault schedules — everything the ack/retry protocol
//!   absorbs (drops, duplicates, corruption, delays, stalls, slowdowns) —
//!   must produce labels **bit-identical** to the fault-free run (and so
//!   to the sequential engine), plus an equal [`ConformanceView`].
//! - **Unsurvivable** schedules (dead links, lost peers) must degrade
//!   gracefully to a sequential host re-run flagged `degraded` — never
//!   panic, never deadlock.
//! - The same `--chaos` seed must replay the exact same schedule: repeated
//!   runs emit identical fault events and, with the logical clock,
//!   byte-identical journals.

use cmmd_sim::{CommScheme, FaultPlan, PROFILE_NAMES};
use rg_core::{segment, validate_journal, Config, EventLog, Recorder};
use rg_imaging::synth;
use rg_msgpass::{
    segment_msgpass, segment_msgpass_chaos, segment_msgpass_chaos_with_telemetry,
    segment_msgpass_with_telemetry, Decomposition,
};

const NODES: usize = 4;

fn test_image() -> rg_imaging::GrayImage {
    synth::random_rects(48, 48, 8, 7)
}

fn test_config() -> Config {
    Config::with_threshold(12)
}

/// Host config with the message-passing square cap applied.
fn capped(config: &Config, nodes: usize, w: usize, h: usize) -> Config {
    let d = Decomposition::for_nodes(nodes, w, h);
    Config {
        max_square_log2: Some(
            config
                .max_square_log2
                .map(|c| c.min(d.max_safe_square_log2()))
                .unwrap_or(d.max_safe_square_log2()),
        ),
        ..*config
    }
}

#[test]
fn survivable_profiles_are_bit_identical_to_fault_free() {
    let img = test_image();
    let cfg = test_config();
    let host = segment(&img, &capped(&cfg, NODES, img.width(), img.height()));
    let mut total_faults = 0u64;
    for scheme in [CommScheme::Async, CommScheme::LinearPermutation] {
        let clean = segment_msgpass(&img, &cfg, NODES, scheme);
        assert_eq!(clean.seg, host, "fault-free {scheme:?} must match host");
        for profile in ["none", "drop", "dup", "corrupt", "delay", "slow"] {
            for seed in [1u64, 2, 0xC0FFEE] {
                let plan = FaultPlan::new(seed, profile).expect("known profile");
                let out = segment_msgpass_chaos(&img, &cfg, NODES, scheme, &plan);
                assert!(
                    !out.degraded,
                    "{profile}:{seed:#x} on {scheme:?} should be survivable"
                );
                assert_eq!(
                    out.seg, clean.seg,
                    "{profile}:{seed:#x} on {scheme:?} must be bit-identical"
                );
                total_faults += out.fault_counters.total_faults();
            }
        }
    }
    assert!(
        total_faults > 0,
        "the survivable matrix must actually inject faults"
    );
}

#[test]
fn every_profile_and_seed_completes_without_panicking() {
    // The storm and blackhole profiles may or may not be survivable per
    // seed; either way the run must complete with correct labels — the
    // fault-free segmentation when it survives, the host fallback when the
    // cluster is lost.
    let img = test_image();
    let cfg = test_config();
    let host = segment(&img, &capped(&cfg, NODES, img.width(), img.height()));
    let (mut survived, mut degraded) = (0u32, 0u32);
    for profile in PROFILE_NAMES {
        for seed in 0u64..4 {
            let plan = FaultPlan::new(seed, profile).expect("known profile");
            let out = segment_msgpass_chaos(&img, &cfg, NODES, CommScheme::Async, &plan);
            assert_eq!(out.seg.labels, host.labels, "{profile}:{seed}");
            assert_eq!(out.seg.num_regions, host.num_regions, "{profile}:{seed}");
            if out.degraded {
                degraded += 1;
                assert_eq!(
                    out.fault_events.last().map(|e| e.kind.label()),
                    Some("degraded"),
                    "{profile}:{seed} must end with a degraded marker"
                );
            } else {
                survived += 1;
            }
        }
    }
    assert!(survived > 0, "some schedules must survive");
    assert!(degraded > 0, "blackhole schedules must degrade");
}

#[test]
fn blackhole_degrades_to_host_fallback() {
    let img = test_image();
    let cfg = test_config();
    let host = segment(&img, &capped(&cfg, NODES, img.width(), img.height()));
    let plan = FaultPlan::parse("7:blackhole").expect("valid spec");
    let out = segment_msgpass_chaos(&img, &cfg, NODES, CommScheme::Async, &plan);
    assert!(out.degraded, "blackhole must kill the cluster");
    assert_eq!(out.seg, host, "degraded labels come from the host engine");
    assert!(out.fault_counters.links_dead > 0);
    assert_eq!(out.total_messages, 0, "no comm totals on a degraded run");
}

#[test]
fn chaos_report_matches_fault_free_conformance_view() {
    let img = test_image();
    let cfg = test_config();

    let mut clean_rec = Recorder::new();
    segment_msgpass_with_telemetry(&img, &cfg, NODES, CommScheme::Async, &mut clean_rec);

    let plan = FaultPlan::parse("2:storm").expect("valid spec");
    let mut chaos_rec = Recorder::new();
    let out = segment_msgpass_chaos_with_telemetry(
        &img,
        &cfg,
        NODES,
        CommScheme::Async,
        &plan,
        &mut chaos_rec,
    );
    assert!(!out.degraded, "storm seed 2 is a survivable schedule");
    assert!(out.fault_counters.total_faults() > 0);

    let clean = clean_rec.report();
    let chaos = chaos_rec.report();
    assert_eq!(
        clean.conformance_view(),
        chaos.conformance_view(),
        "surviving a chaos schedule must not change what the run computed"
    );
    // The chaos report carries the injected faults; the clean one is bare.
    assert!(clean.faults.is_empty() && !clean.degraded);
    assert_eq!(chaos.faults.len(), out.fault_events.len());
    assert!(!chaos.degraded);
    assert_eq!(
        chaos.counter("faults.total"),
        Some(out.fault_counters.total_faults() as f64)
    );
}

#[test]
fn degraded_run_reports_degraded_marker() {
    let img = test_image();
    let cfg = test_config();
    let plan = FaultPlan::parse("7:blackhole").expect("valid spec");
    let mut rec = Recorder::new();
    segment_msgpass_chaos_with_telemetry(&img, &cfg, NODES, CommScheme::Async, &plan, &mut rec);
    let r = rec.report();
    assert!(r.degraded, "telemetry report must carry the degraded flag");
    assert!(r.faults.iter().any(|f| f.kind == "degraded"));
    assert!(r.faults.iter().any(|f| f.kind == "link_dead"));
    // The degraded flag round-trips through report JSON.
    let json = rg_core::json::Json::parse(&r.to_json_pretty()).expect("well-formed JSON");
    let back = rg_core::TelemetryReport::from_json(&json).expect("parseable report");
    assert!(back.degraded);
    assert_eq!(back.faults, r.faults);
}

#[test]
fn chaos_journals_validate_and_replay_byte_identically() {
    let img = test_image();
    let cfg = test_config();
    for spec in ["2:storm", "7:blackhole"] {
        let plan = FaultPlan::parse(spec).expect("valid spec");
        let run = || {
            let mut log = EventLog::in_memory().with_logical_clock();
            segment_msgpass_chaos_with_telemetry(
                &img,
                &cfg,
                NODES,
                CommScheme::Async,
                &plan,
                &mut log,
            );
            log.into_events()
        };
        let (a, b) = (run(), run());
        validate_journal(&a).unwrap_or_else(|e| panic!("{spec}: invalid chaos journal: {e:?}"));
        assert!(!a.is_empty());
        // Same seed, same schedule: byte-identical journal lines.
        let lines = |evs: &[rg_core::Event]| -> Vec<String> {
            evs.iter().map(|e| e.to_json().to_compact()).collect()
        };
        assert_eq!(lines(&a), lines(&b), "{spec}: journal must be reproducible");
        // Fault events made it into the journal.
        assert!(
            a.iter()
                .any(|e| matches!(&e.kind, rg_core::EventKind::Fault { .. })),
            "{spec}: journal must record fault events"
        );
    }
}

#[test]
fn same_seed_same_schedule_different_seed_different_schedule() {
    let img = test_image();
    let cfg = test_config();
    let run = |seed: u64| {
        let plan = FaultPlan::new(seed, "storm").expect("known profile");
        segment_msgpass_chaos(&img, &cfg, NODES, CommScheme::Async, &plan)
    };
    let (a, b, c) = (run(2), run(2), run(3));
    assert_eq!(a.fault_events, b.fault_events, "seed 2 must replay exactly");
    assert_eq!(a.fault_counters, b.fault_counters);
    assert_ne!(
        a.fault_events, c.fault_events,
        "different seeds must produce different schedules"
    );
}

#[test]
fn chaos_batch_pipeline_matches_host_per_image() {
    use rg_core::{run_batch_collect, BatchOptions, NullTelemetry};
    let cfg = test_config();
    let imgs: Vec<_> = (0..3).map(|s| synth::random_rects(32, 32, 6, s)).collect();
    let plan = FaultPlan::parse("1:drop").expect("valid spec");
    let capped_cfg = capped(&cfg, NODES, 32, 32);
    let mp_cfg = capped_cfg; // same cap for host comparison
    let (results, summary) = run_batch_collect(
        &imgs,
        &BatchOptions::new().jobs(8).chaos(1, "drop"),
        || {
            Box::new(rg_msgpass::MsgPassPipeline::with_chaos(
                mp_cfg,
                NODES,
                CommScheme::Async,
                plan.clone(),
            ))
        },
        &mut NullTelemetry,
    );
    assert_eq!(summary.images, imgs.len());
    for (img, got) in imgs.iter().zip(&results) {
        assert_eq!(got, &segment(img, &capped_cfg));
    }
}
