//! Argument-parsing contract of the `rgrow` binary: bad values for the
//! enumerated flags exit with code 2 and name the valid choices, so a
//! mistyped engine or tie policy never silently falls back to a default.
//!
//! These tests spawn the real binary (no argv mocking) — the same code
//! path a user's shell hits.

use std::process::{Command, Output};

fn rgrow(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rgrow"))
        .args(args)
        .output()
        .expect("spawn rgrow")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn bad_engine_exits_2_and_lists_choices() {
    let out = rgrow(&["--demo", "nested", "--engine", "gpu"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown engine \"gpu\""), "{err}");
    assert!(
        err.contains("valid choices are: seq, par, cm2-8k, cm2-16k, cm5-dp, mp-lp, mp-async"),
        "{err}"
    );
}

#[test]
fn bad_tie_exits_2_and_lists_choices() {
    let out = rgrow(&["--demo", "nested", "--tie", "biggest"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(
        err.contains("unknown tie-break policy \"biggest\""),
        "{err}"
    );
    assert!(
        err.contains("valid choices are: random, smallest, largest"),
        "{err}"
    );
}

#[test]
fn bad_chaos_profile_exits_2_and_lists_choices() {
    let out = rgrow(&[
        "--demo",
        "nested",
        "--engine",
        "mp-lp",
        "--chaos",
        "7:tsunami",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("bad --chaos spec \"7:tsunami\""), "{err}");
    assert!(err.contains("unknown chaos profile \"tsunami\""), "{err}");
    assert!(err.contains("valid choices are:"), "{err}");
}

#[test]
fn bad_chaos_seed_exits_2() {
    let out = rgrow(&[
        "--demo",
        "nested",
        "--engine",
        "mp-lp",
        "--chaos",
        "banana:storm",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("bad chaos seed \"banana\""), "{err}");
}

#[test]
fn chaos_without_mp_engine_exits_2() {
    let out = rgrow(&["--demo", "nested", "--engine", "par", "--chaos", "7:storm"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("needs an mp-* engine"), "{err}");
    assert!(err.contains("\"par\""), "{err}");
}

#[test]
fn bad_jobs_exits_2_and_names_the_flag() {
    let out = rgrow(&["--demo", "nested", "--jobs", "many"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("bad --jobs value \"many\""), "{err}");
    assert!(err.contains("worker count"), "{err}");
}

#[test]
fn missing_flag_value_exits_2_and_names_the_flag() {
    let out = rgrow(&["--demo", "nested", "--engine"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("missing value for --engine"));
}

#[test]
fn unknown_flag_exits_2_with_usage() {
    let out = rgrow(&["--demo", "nested", "--warp-drive"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown flag --warp-drive"), "{err}");
    assert!(err.contains("usage: rgrow"), "{err}");
}

#[test]
fn bad_tiles_spec_exits_2_and_shows_expected_form() {
    for bad in ["4", "0x4", "4x0", "axb"] {
        let out = rgrow(&["--demo", "nested", "--tiles", bad]);
        assert_eq!(out.status.code(), Some(2), "spec {bad:?}");
        let err = stderr(&out);
        assert!(err.contains("bad --tiles spec"), "{bad:?}: {err}");
        assert!(err.contains("ROWSxCOLS"), "{bad:?}: {err}");
    }
}

#[test]
fn tiles_with_simulator_engine_exits_2() {
    let out = rgrow(&["--demo", "nested", "--tiles", "2x2", "--engine", "mp-lp"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("host engines"), "{err}");
    assert!(err.contains("\"mp-lp\""), "{err}");
}

#[test]
fn tiles_with_batch_exits_2() {
    let out = rgrow(&["--batch", "demo:nested:2", "--tiles", "2x2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("cannot combine with --batch"));
}

#[test]
fn zero_count_batch_exits_2_with_message() {
    // `demo:scene:0` used to run an empty batch silently and exit 0.
    let out = rgrow(&["--batch", "demo:nested:0", "--quiet"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("zero images"), "{err}");
    assert!(err.contains("demo:nested:0"), "{err}");
}

#[test]
fn empty_glob_batch_exits_2_with_message() {
    let dir = std::env::temp_dir().join("rgrow_empty_glob_test");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = format!("{}/*.pgm", dir.display());
    let out = rgrow(&["--batch", &spec, "--quiet"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("matched no files"));
}

#[test]
fn bad_demo_size_exits_2() {
    for bad in ["nested:0", "nested:huge", "image3:128"] {
        let out = rgrow(&["--demo", bad]);
        assert_eq!(out.status.code(), Some(2), "demo {bad:?}");
    }
}

#[test]
fn tiled_demo_runs_and_verifies() {
    let out = rgrow(&[
        "--demo",
        "nested:128",
        "--engine",
        "seq",
        "--tiles",
        "3x2",
        "--jobs",
        "2",
        "--verify",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("tiled 3x2 (6 tiles"), "{stdout}");
    assert!(stdout.contains("verify: ok"), "{stdout}");
}

#[test]
fn good_args_still_run() {
    // Sanity: the guard rails above must not reject valid invocations.
    let out = rgrow(&[
        "--demo", "nested", "--engine", "seq", "--tie", "smallest", "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
}
