//! Argument-parsing contract of the `rgrow` binary: bad values for the
//! enumerated flags exit with code 2 and name the valid choices, so a
//! mistyped engine or tie policy never silently falls back to a default.
//!
//! These tests spawn the real binary (no argv mocking) — the same code
//! path a user's shell hits.

use std::process::{Command, Output};

fn rgrow(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rgrow"))
        .args(args)
        .output()
        .expect("spawn rgrow")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn bad_engine_exits_2_and_lists_choices() {
    let out = rgrow(&["--demo", "nested", "--engine", "gpu"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown engine \"gpu\""), "{err}");
    assert!(
        err.contains("valid choices are: seq, par, cm2-8k, cm2-16k, cm5-dp, mp-lp, mp-async"),
        "{err}"
    );
}

#[test]
fn bad_tie_exits_2_and_lists_choices() {
    let out = rgrow(&["--demo", "nested", "--tie", "biggest"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(
        err.contains("unknown tie-break policy \"biggest\""),
        "{err}"
    );
    assert!(
        err.contains("valid choices are: random, smallest, largest"),
        "{err}"
    );
}

#[test]
fn bad_chaos_profile_exits_2_and_lists_choices() {
    let out = rgrow(&[
        "--demo",
        "nested",
        "--engine",
        "mp-lp",
        "--chaos",
        "7:tsunami",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("bad --chaos spec \"7:tsunami\""), "{err}");
    assert!(err.contains("unknown chaos profile \"tsunami\""), "{err}");
    assert!(err.contains("valid choices are:"), "{err}");
}

#[test]
fn bad_chaos_seed_exits_2() {
    let out = rgrow(&[
        "--demo",
        "nested",
        "--engine",
        "mp-lp",
        "--chaos",
        "banana:storm",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("bad chaos seed \"banana\""), "{err}");
}

#[test]
fn chaos_without_mp_engine_exits_2() {
    let out = rgrow(&["--demo", "nested", "--engine", "par", "--chaos", "7:storm"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("needs an mp-* engine"), "{err}");
    assert!(err.contains("\"par\""), "{err}");
}

#[test]
fn bad_jobs_exits_2_and_names_the_flag() {
    let out = rgrow(&["--demo", "nested", "--jobs", "many"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("bad --jobs value \"many\""), "{err}");
    assert!(err.contains("worker count"), "{err}");
}

#[test]
fn missing_flag_value_exits_2_and_names_the_flag() {
    let out = rgrow(&["--demo", "nested", "--engine"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("missing value for --engine"));
}

#[test]
fn unknown_flag_exits_2_with_usage() {
    let out = rgrow(&["--demo", "nested", "--warp-drive"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown flag --warp-drive"), "{err}");
    assert!(err.contains("usage: rgrow"), "{err}");
}

#[test]
fn good_args_still_run() {
    // Sanity: the guard rails above must not reject valid invocations.
    let out = rgrow(&[
        "--demo", "nested", "--engine", "seq", "--tie", "smallest", "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
}
