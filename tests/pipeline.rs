//! End-to-end pipeline tests: PGM in, segmentation out, verification, and
//! the split stage's benefit over merge-only region growing.

use rg_core::{segment, segment_par, verify_segmentation, Config, TieBreak};
use rg_imaging::{pgm, synth, GrayImage};

#[test]
fn pgm_roundtrip_through_segmentation() {
    // Write a scene to PGM, read it back, segment, and verify — the full
    // user-facing workflow.
    let img = synth::rect_collection(128);
    let mut buf = Vec::new();
    pgm::write(&img, None, pgm::Flavor::Binary, &mut buf).unwrap();
    let back: GrayImage = pgm::read(&buf[..]).unwrap();
    assert_eq!(back, img);

    let cfg = Config::with_threshold(10);
    let seg = segment(&back, &cfg);
    assert_eq!(seg.num_regions, 7);
    verify_segmentation(&back, &seg, &cfg).unwrap();
}

#[test]
fn labels_render_to_valid_pgm() {
    let img = synth::circle_collection(64);
    let cfg = Config::with_threshold(10);
    let seg = segment(&img, &cfg);
    let rendered = rg_core::labels::labels_to_image(&seg.labels, seg.width, seg.height);
    let mut buf = Vec::new();
    pgm::write(&rendered, None, pgm::Flavor::Ascii, &mut buf).unwrap();
    let back: GrayImage = pgm::read(&buf[..]).unwrap();
    assert_eq!(back, rendered);
}

#[test]
fn split_stage_reduces_merge_iterations() {
    // The paper's motivation: "the algorithm aims to reduce the number of
    // merge steps required ... by using a preprocessing split stage."
    for pi in [synth::PaperImage::Image1, synth::PaperImage::Image2] {
        let img = pi.generate();
        let with_split = segment(&img, &Config::with_threshold(10));
        let merge_only = segment(&img, &Config::with_threshold(10).max_square_log2(Some(0)));
        assert_eq!(with_split.labels, merge_only.labels, "{pi:?} partition");
        assert!(
            with_split.merge_iterations <= merge_only.merge_iterations,
            "{pi:?}: split {} iters vs merge-only {}",
            with_split.merge_iterations,
            merge_only.merge_iterations
        );
        // And the split stage leaves far fewer units to merge.
        assert!(with_split.num_squares * 4 < merge_only.num_squares);
    }
}

#[test]
fn random_ties_beat_smallest_id_on_paper_images() {
    // The paper's headline algorithmic claim, measured in iterations.
    let mut random_wins = 0usize;
    let mut total = 0usize;
    for pi in [
        synth::PaperImage::Image1,
        synth::PaperImage::Image2,
        synth::PaperImage::Image3,
    ] {
        let img = pi.generate();
        let rand_iters: u32 = (1..=3)
            .map(|s| {
                segment(
                    &img,
                    &Config::with_threshold(10).tie_break(TieBreak::Random { seed: s }),
                )
                .merge_iterations
            })
            .sum::<u32>()
            / 3;
        let small_iters = segment(
            &img,
            &Config::with_threshold(10).tie_break(TieBreak::SmallestId),
        )
        .merge_iterations;
        total += 1;
        if rand_iters <= small_iters {
            random_wins += 1;
        }
    }
    assert_eq!(
        random_wins, total,
        "random tie-breaking should not lose on any paper image"
    );
}

#[test]
fn threshold_zero_yields_flat_components() {
    // With T = 0 regions are exactly the flat connected components.
    let img = synth::rect_collection(64);
    let cfg = Config::with_threshold(0);
    let seg = segment(&img, &cfg);
    assert_eq!(seg.num_regions, 7);
    verify_segmentation(&img, &seg, &cfg).unwrap();
}

#[test]
fn threshold_255_yields_single_region() {
    let img = synth::random_rects(48, 48, 6, 1);
    let cfg = Config::with_threshold(255);
    let seg = segment(&img, &cfg);
    assert_eq!(seg.num_regions, 1);
}

#[test]
fn par_engine_verifies_on_all_paper_images() {
    for pi in synth::PaperImage::ALL {
        let img = pi.generate();
        let cfg = Config::with_threshold(10);
        let seg = segment_par(&img, &cfg);
        verify_segmentation(&img, &seg, &cfg).unwrap_or_else(|v| panic!("{pi:?}: {}", v[0]));
    }
}

#[test]
fn par_engine_is_thread_count_independent() {
    // Every parallel step is order-independent, so the result must not
    // depend on the rayon pool size.
    let img = synth::circle_collection(128);
    let cfg = Config::with_threshold(10).tie_break(TieBreak::Random { seed: 3 });
    let run_with = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool")
            .install(|| segment_par(&img, &cfg))
    };
    let one = run_with(1);
    let four = run_with(4);
    assert_eq!(one, four);
    assert_eq!(one, segment(&img, &cfg));
}
