//! Steady-state zero-allocation assertion for the tiled runner.
//!
//! [`TiledRunner`] extends the host pipelines' high-water-mark promise to
//! the sharded path: tile slots, the global vertex table, the seam edge
//! list, the stitch merger and the compaction tables all grow once and are
//! then refilled in place. With a single worker (the pooled path spawns
//! scoped threads, which inherently allocate) a warm runner must stream
//! same-shape images with **zero** new heap allocations.
//!
//! One `#[test]` only: counting is process-global, and a single test keeps
//! other tests' allocations out of the measured window regardless of the
//! harness' thread scheduling.

use rg_core::{Config, NullTelemetry, Segmentation, TieBreak, TileGrid, TiledRunner};
use rg_imaging::synth;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts allocations (not frees): the steady-state claim is about new
/// heap traffic, so `alloc` / `realloc` are the interesting events.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// Allocator shims must forward verbatim; the counter is the only addition.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warm_tiled_runner_streams_allocation_free() {
    // A busy scene on a grid with non-divisible edge tiles, so the worker
    // re-plans across the (bounded) set of tile shapes every image.
    let images: Vec<_> = (0..4)
        .map(|s| synth::random_rects(130, 94, 10, s))
        .collect();
    let cfg = Config::with_threshold(10).tie_break(TieBreak::SmallestId);
    let mut runner = TiledRunner::new(cfg, false, TileGrid::new(3, 4), 1);
    let mut out = Segmentation::default();

    // Warm-up pass: every arena grows to the stream's high-water mark.
    let mut expected = Vec::new();
    for img in &images {
        runner.run_into(img, &mut NullTelemetry, &mut out);
        expected.push(out.clone());
    }
    assert!(
        runner.worker_workspace().is_some(),
        "worker pool must persist across runs"
    );

    // Steady-state pass: identical results, zero new allocations.
    for (img, want) in images.iter().zip(&expected) {
        let before = allocs();
        runner.run_into(img, &mut NullTelemetry, &mut out);
        let delta = allocs() - before;
        assert_eq!(
            delta, 0,
            "steady-state tiled image made {delta} heap allocation(s)"
        );
        assert_eq!(&out, want, "steady-state result drifted");
    }
}
