//! Tiled-vs-whole differential suite for `rg_core::tiles`.
//!
//! The stitch layer's contract is *partition identity*: on a
//! threshold-separated scene (every pair of adjacent flat regions differs
//! by more than the threshold) the merge fixed point is unique, so a tiled
//! run must reproduce the whole-image host engine's labels **exactly** —
//! any grid, any worker count, any tie policy. On arbitrary scenes the
//! guarantee weakens to worker-count invariance plus the verifier's
//! structural invariants (connected, homogeneous, maximal); these are
//! property-tested separately.

use proptest::prelude::*;
use rg_core::{segment, segment_tiled, verify_segmentation, Config, TieBreak, TileGrid};
use rg_imaging::{synth, Image};

/// Paints axis-aligned rectangles whose intensities are multiples of 40 on
/// a zero background: any two distinct painted values differ by at least
/// 40, so the scene is threshold-separated for every threshold below 40.
fn separated_scene(w: usize, h: usize, rects: &[(usize, usize, usize, usize)]) -> Image<u8> {
    let mut img = Image::new(w, h, 0u8);
    for (i, &(x, y, rw, rh)) in rects.iter().enumerate() {
        let v = 40 * ((i % 6) + 1) as u8;
        for yy in y.min(h)..(y + rh).min(h) {
            for xx in x.min(w)..(x + rw).min(w) {
                img.set(xx, yy, v);
            }
        }
    }
    img
}

const TIES: [TieBreak; 3] = [
    TieBreak::SmallestId,
    TieBreak::LargestId,
    TieBreak::Random { seed: 41 },
];

/// Partition identity = the pixel→label map and the region count. Run
/// metadata (square counts, iteration tallies) legitimately differs
/// between a tiled run and a whole-image run and is excluded.
fn partition_of(seg: &rg_core::Segmentation) -> (&[u32], usize, usize, usize) {
    (&seg.labels, seg.num_regions, seg.width, seg.height)
}

prop_compose! {
    fn scene()(
        w in 1usize..72,
        h in 1usize..72,
        rects in proptest::collection::vec(
            (0usize..72, 0usize..72, 1usize..36, 1usize..36),
            0..8,
        ),
    ) -> Image<u8> {
        separated_scene(w, h, &rects)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Separated scenes: exact label identity against the whole-image
    /// engine for every tie family, random grids (including grids larger
    /// than the image — they clamp), and both serial and pooled workers.
    #[test]
    fn tiled_matches_whole_on_separated_scenes(
        img in scene(),
        rows in 1usize..7,
        cols in 1usize..7,
        tie_idx in 0usize..3,
        jobs in 1usize..5,
    ) {
        let cfg = Config::with_threshold(10).tie_break(TIES[tie_idx]);
        let whole = segment(&img, &cfg);
        let tiled = segment_tiled(&img, &cfg, TileGrid::new(rows, cols), jobs);
        prop_assert_eq!(
            partition_of(&whole), partition_of(&tiled),
            "grid {}x{} jobs {} tie {:?} on {}x{}",
            rows, cols, jobs, TIES[tie_idx], img.width(), img.height()
        );
    }

    /// Arbitrary (non-separated) scenes: the tiled result must not depend
    /// on the worker count, and must satisfy the verifier's invariants —
    /// connected, homogeneous, and maximal under the monotone criterion.
    #[test]
    fn tiled_runs_are_worker_invariant_and_verify(
        w in 2usize..64,
        h in 2usize..64,
        seed in 0u64..10_000,
        t in 5u32..60,
        rows in 1usize..5,
        cols in 1usize..5,
    ) {
        let img = synth::random_rects(w, h, 8, seed);
        let cfg = Config::with_threshold(t);
        let grid = TileGrid::new(rows, cols);
        let serial = segment_tiled(&img, &cfg, grid, 1);
        let pooled = segment_tiled(&img, &cfg, grid, 4);
        prop_assert_eq!(&serial, &pooled, "tiled output depends on worker count");
        if let Err(violations) = verify_segmentation(&img, &serial, &cfg) {
            prop_assert!(
                false,
                "grid {}x{} on {}x{} t={}: {:?}",
                rows, cols, w, h, t, violations
            );
        }
    }
}

/// Non-divisible shapes the floor-split must handle: a wide-and-shallow
/// image whose tile widths differ, and degenerate 1-pixel-thin strips
/// where one grid axis clamps away entirely.
#[test]
fn non_divisible_and_degenerate_shapes_match_whole() {
    let rects = [
        (7usize, 3usize, 120usize, 40usize),
        (200, 0, 90, 99),
        (350, 50, 163, 50),
        (0, 60, 40, 40),
        (480, 2, 33, 20),
    ];
    let scenes = [
        separated_scene(513, 100, &rects),
        separated_scene(1, 257, &rects),
        separated_scene(257, 1, &rects),
        separated_scene(4, 4, &rects),
    ];
    for img in &scenes {
        for tie in TIES {
            let cfg = Config::with_threshold(10).tie_break(tie);
            let whole = segment(img, &cfg);
            for grid in [
                TileGrid::new(4, 3),
                TileGrid::new(8, 8),
                TileGrid::new(1, 9),
                TileGrid::new(9, 9),
            ] {
                for jobs in [1, 4] {
                    let tiled = segment_tiled(img, &cfg, grid, jobs);
                    assert_eq!(
                        partition_of(&whole),
                        partition_of(&tiled),
                        "{}x{} grid {grid} jobs {jobs} tie {tie:?}",
                        img.width(),
                        img.height(),
                    );
                }
            }
        }
    }
}
