//! Telemetry JSON round-trip and golden-file snapshot.
//!
//! Two golden files pin the full report schema for deterministic runs of
//! the 64×64 nested-rectangles scene — on the simulated CM-2 (8K), and on
//! the host pipeline (which adds the packed split stage's `split.*`
//! counters) — after canonicalising away host wall-clock times
//! (`without_wall_times`).
//! Simulated seconds, iteration histories, and per-primitive counters are
//! all exact and platform-independent, so any change to the event schema or
//! to the engines' behaviour shows up as a diff against the snapshot.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test telemetry_golden
//! ```

use cm_sim::CostModel;
use cmmd_sim::CommScheme;
use rg_core::{
    segment_par_with_telemetry, segment_with_telemetry, Config, Recorder, TelemetryReport, TieBreak,
};
use rg_imaging::synth;
use std::path::Path;

const GOLDEN: &str = "tests/golden/telemetry_nested64.json";
const GOLDEN_HOST: &str = "tests/golden/telemetry_host_nested64.json";

fn golden_report() -> TelemetryReport {
    let img = synth::nested_rects(64);
    let cfg = Config::with_threshold(10).tie_break(TieBreak::Random { seed: 0x5EED });
    let mut rec = Recorder::new();
    rg_datapar::segment_datapar_with_telemetry(&img, &cfg, CostModel::cm2_8k(), &mut rec);
    rec.into_report().without_wall_times()
}

/// Same scene through the host pipeline, which additionally emits the
/// packed split stage's deterministic `split.*` counters (levels built,
/// productive levels, bitset words tested, stats cells folded).
fn golden_host_report() -> TelemetryReport {
    let img = synth::nested_rects(64);
    let cfg = Config::with_threshold(10).tie_break(TieBreak::Random { seed: 0x5EED });
    let mut rec = Recorder::new();
    segment_with_telemetry(&img, &cfg, &mut rec);
    rec.into_report().without_wall_times()
}

fn check_golden(report: &TelemetryReport, golden: &str) {
    let rendered = report.to_json_pretty();
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(golden);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {golden} ({e}); run with UPDATE_GOLDEN=1"));
    // Compare parsed reports first for a structured failure message, then
    // the exact rendering (field order, float formatting).
    let expected_report = TelemetryReport::parse(&expected).expect("golden file parses");
    assert_eq!(
        report, &expected_report,
        "telemetry content diverged from golden snapshot {golden}"
    );
    assert_eq!(
        rendered.trim_end(),
        expected.trim_end(),
        "telemetry JSON rendering diverged from golden snapshot {golden}"
    );
}

#[test]
fn golden_snapshot_matches() {
    check_golden(&golden_report(), GOLDEN);
}

#[test]
fn golden_host_snapshot_matches() {
    check_golden(&golden_host_report(), GOLDEN_HOST);
}

#[test]
fn host_report_carries_split_counters() {
    // The split stage's packed-engine counters are deterministic data, so
    // they belong in the snapshot — but they stay out of the cross-engine
    // conformance view (`conformance_view()` strips counters).
    let report = golden_host_report();
    for name in [
        "split.levels_built",
        "split.productive_levels",
        "split.words_tested",
        "split.cells_folded",
    ] {
        assert!(
            report.counter(name).is_some(),
            "host report missing counter {name}"
        );
    }
    assert!(report.counter("split.levels_built").unwrap() >= 1.0);
}

#[test]
fn round_trip_is_lossless_for_every_engine() {
    let img = synth::nested_rects(64);
    let cfg = Config::with_threshold(10).tie_break(TieBreak::Random { seed: 7 });

    let mut reports = Vec::new();
    let mut rec = Recorder::new();
    segment_with_telemetry(&img, &cfg, &mut rec);
    reports.push(rec.into_report());
    let mut rec = Recorder::new();
    segment_par_with_telemetry(&img, &cfg, &mut rec);
    reports.push(rec.into_report());
    let mut rec = Recorder::new();
    rg_datapar::segment_datapar_with_telemetry(&img, &cfg, CostModel::cm5_dp_32(), &mut rec);
    reports.push(rec.into_report());
    let mut rec = Recorder::new();
    rg_msgpass::segment_msgpass_with_telemetry(&img, &cfg, 8, CommScheme::Async, &mut rec);
    reports.push(rec.into_report());

    for r in reports {
        let compact = r.to_json().to_compact();
        let parsed = TelemetryReport::parse(&compact).expect("compact form parses");
        assert_eq!(
            parsed, r,
            "compact round trip lost data for {}",
            parsed.engine
        );
        let parsed = TelemetryReport::parse(&r.to_json_pretty()).expect("pretty form parses");
        assert_eq!(
            parsed, r,
            "pretty round trip lost data for {}",
            parsed.engine
        );
    }
}

#[test]
fn golden_run_is_deterministic() {
    // The snapshot is only meaningful if the canonicalised report is
    // bit-identical across runs.
    assert_eq!(golden_report(), golden_report());
    assert_eq!(golden_host_report(), golden_host_report());
}
