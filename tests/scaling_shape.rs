//! Scaling-shape tests on the simulated machines: the paper's complexity
//! claims O(N²/P + log P) for the split stage, and the corresponding
//! processor/node sweeps must show monotone improvement with diminishing
//! returns.

use cm_sim::CostModel;
use cmmd_sim::CommScheme;
use rg_core::{Config, TieBreak};
use rg_datapar::segment_datapar;
use rg_imaging::synth;
use rg_msgpass::segment_msgpass;

fn cfg() -> Config {
    Config::with_threshold(10)
        .tie_break(TieBreak::Random { seed: 0x5EED })
        .max_square_log2(Some(4))
}

#[test]
fn cm2_split_time_scales_with_vp_ratio() {
    // Doubling CM-2 processors should cut the split body roughly in half
    // until the VP ratio reaches 1, after which only overhead remains.
    let img = synth::nested_rects(128); // 16384 pixels
    let mut times = Vec::new();
    for procs in [2048usize, 4096, 8192, 16384, 32768] {
        let model = CostModel::cm2(procs, "sweep");
        let out = segment_datapar(&img, &cfg(), model);
        times.push((procs, out.split_seconds));
    }
    // Monotone improvement up to VP ratio 1 (beyond that the only change
    // is the log P wire term, which legitimately grows a hair).
    for w in times[..4].windows(2) {
        assert!(
            w[1].1 < w[0].1,
            "split time must shrink while the VP ratio shrinks: {w:?}"
        );
    }
    // Strict improvement while the VP ratio shrinks (2048 -> 16384)...
    let t0 = times[0].1;
    let t3 = times[3].1;
    assert!(t3 < t0 / 2.0, "expected >2x improvement, got {t0} -> {t3}");
    // ...then diminishing returns once every pixel has its own processor.
    let t4 = times[4].1;
    assert!(
        (t4 - t3).abs() < t3 * 0.05,
        "beyond vp-ratio 1 only the log-P wire term changes: {t3} vs {t4}"
    );
}

#[test]
fn mp_split_time_scales_with_nodes() {
    let img = synth::nested_rects(128);
    let mut times = Vec::new();
    for nodes in [4usize, 8, 16, 32] {
        let out = segment_msgpass(&img, &cfg(), nodes, CommScheme::Async);
        times.push((nodes, out.split_seconds));
    }
    for w in times.windows(2) {
        assert!(w[1].1 < w[0].1, "more nodes must shrink the split: {w:?}");
    }
    // Near-linear at these sizes: 8x nodes should give >= 4x speedup.
    assert!(times[0].1 / times[3].1 > 4.0);
}

#[test]
fn lp_penalty_grows_with_node_count() {
    // LP loops Q-1 rounds per exchange, so its gap to Async widens as the
    // machine grows — the structural reason the paper prefers Async.
    let img = synth::rect_collection(128);
    let gap = |nodes: usize| {
        let lp = segment_msgpass(&img, &cfg(), nodes, CommScheme::LinearPermutation);
        let asy = segment_msgpass(&img, &cfg(), nodes, CommScheme::Async);
        assert_eq!(lp.seg, asy.seg);
        lp.merge_seconds_as_reported() - asy.merge_seconds_as_reported()
    };
    let small = gap(8);
    let large = gap(32);
    assert!(
        large > small,
        "LP penalty should grow: 8 nodes {small}, 32 nodes {large}"
    );
}
