//! Causal-analysis acceptance: on random fault-free message-passing runs
//! the reconstructed critical path must respect its two structural bounds
//! (≤ wall time, ≥ the busiest rank), the journal's flow events must pair
//! perfectly, and a journal truncated mid-stream must still analyze —
//! degraded, reported, never panicking.

use cmmd_sim::{CommScheme, FaultPlan};
use proptest::prelude::*;
use rg_core::{
    analyze_run, flow_pairing, parse_journal, split_runs, validate_journal, Config, Event,
    EventLog, TieBreak,
};
use rg_imaging::synth;
use rg_msgpass::{segment_msgpass_chaos_with_telemetry, segment_msgpass_with_telemetry};

/// Runs a traced fault-free msgpass segmentation and returns its journal.
fn traced_run(
    img: &rg_imaging::GrayImage,
    cfg: &Config,
    nodes: usize,
    scheme: CommScheme,
) -> Vec<Event> {
    let mut log = EventLog::in_memory();
    segment_msgpass_with_telemetry(img, cfg, nodes, scheme, &mut log);
    log.into_events()
}

// A small random scene plus a random cluster shape: enough variety to
// cover 1..=8 ranks, both comm schemes, and skewed region layouts.
prop_compose! {
    fn scenario()(
        w in 16usize..48,
        h in 16usize..48,
        rects in 2usize..8,
        seed in 0u64..100_000,
        nodes in 1usize..=8,
        threshold in 4u32..40,
        lp in proptest::bool::ANY,
    ) -> (rg_imaging::GrayImage, Config, usize, CommScheme) {
        let img = synth::random_rects(w, h, rects, seed);
        let cfg = Config::with_threshold(threshold)
            .tie_break(TieBreak::Random { seed });
        let scheme = if lp { CommScheme::LinearPermutation } else { CommScheme::Async };
        (img, cfg, nodes, scheme)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The clamped critical-path DP is sound on every fault-free run:
    /// never longer than the virtual wall clock, never shorter than the
    /// busiest rank, with every flow recv paired to a prior send.
    #[test]
    fn critical_path_is_bounded_on_random_runs(
        (img, cfg, nodes, scheme) in scenario()
    ) {
        let events = traced_run(&img, &cfg, nodes, scheme);
        validate_journal(&events).unwrap();
        let fp = flow_pairing(&events);
        prop_assert!(fp.any(), "traced msgpass run captured no flow events");
        prop_assert!(fp.fully_paired(), "{fp:?}");

        let a = analyze_run(&events).expect("flows present but no analysis");
        prop_assert_eq!(a.ranks.len(), nodes);
        prop_assert!(
            a.critical_path_ns <= a.wall_ns + 1e-6,
            "critical path {} ns exceeds wall {} ns",
            a.critical_path_ns, a.wall_ns
        );
        prop_assert!(
            a.critical_path_ns + 1e-6 >= a.max_busy_ns(),
            "critical path {} ns below max rank busy {} ns",
            a.critical_path_ns, a.max_busy_ns()
        );
        prop_assert!(a.wall_ns > 0.0);
        prop_assert!((0.0..=100.0).contains(&a.imbalance_pct), "{}", a.imbalance_pct);
        prop_assert!(a.straggler < nodes as u32);
        prop_assert_eq!(a.unmatched_recvs, 0);
    }
}

/// Cutting the JSONL text mid-run loses the recv halves of in-flight
/// messages; the tolerant parser and the analyzer must both degrade
/// gracefully — the analysis still comes back, the critical-path bounds
/// still hold, and the lost edges are reported, not invented.
#[test]
fn truncated_journal_analyzes_gracefully() {
    let img = synth::random_rects(48, 48, 6, 11);
    let cfg = Config::with_threshold(12).tie_break(TieBreak::Random { seed: 11 });
    let events = traced_run(&img, &cfg, 4, CommScheme::Async);
    let full = analyze_run(&events).unwrap();

    let text: String = events.iter().map(Event::to_line).collect();
    // Cut in the middle of the journal, then mid-line: the tail event is
    // malformed on purpose, as a crashed writer would leave it.
    let cut = text.len() * 3 / 5;
    let truncated = &text[..cut];
    let (parsed, stats) = parse_journal(truncated);
    assert!(parsed.len() < events.len());
    assert!(!parsed.is_empty());
    let _ = stats; // a mid-line cut may or may not leave a partial line

    let runs = split_runs(&parsed);
    assert_eq!(runs.len(), 1);
    let a = analyze_run(runs[0]).expect("truncated journal must still analyze");
    assert!(a.critical_path_ns <= a.wall_ns + 1e-6);
    assert!(a.critical_path_ns + 1e-6 >= a.max_busy_ns());
    assert!(a.critical_path_ns <= full.critical_path_ns + 1e-6);
    // Flow accounting over the truncated prefix still balances: recvs
    // whose send survived stay matched, and nothing is double-counted.
    assert_eq!(a.matched_flows + a.unmatched_recvs, {
        let fp = flow_pairing(runs[0]);
        fp.recvs
    });
}

/// Chaos-aware attribution, `delay` profile: frames arriving late charge
/// the receiver's blocked wait, and the analyzer pins that wait on the
/// run totals and on specific edges. Same seed → same attribution
/// (regression guard for the deterministic virtual clock).
#[test]
fn delay_chaos_attributes_recv_waits_deterministically() {
    let img = synth::random_rects(48, 48, 8, 7);
    let cfg = Config::with_threshold(10).tie_break(TieBreak::Random { seed: 7 });
    let plan = FaultPlan::new(5, "delay").unwrap();

    let analyze_once = || {
        let mut log = EventLog::in_memory();
        let out =
            segment_msgpass_chaos_with_telemetry(&img, &cfg, 4, CommScheme::Async, &plan, &mut log);
        assert!(!out.degraded, "delay profile must be survivable");
        let events = log.into_events();
        validate_journal(&events).unwrap();
        analyze_run(&events).unwrap()
    };

    let a = analyze_once();
    assert!(a.critical_path_ns <= a.wall_ns + 1e-6);
    assert!(a.critical_path_ns + 1e-6 >= a.max_busy_ns());
    assert!(
        a.recv_wait_ns > 0.0,
        "delayed frames must surface as receiver wait"
    );
    assert!(
        a.edges.iter().any(|e| e.recv_wait_ns > 0.0),
        "receiver wait must be attributed to at least one edge"
    );

    // The fault-free twin of the same scene waits strictly less.
    let baseline = {
        let events = traced_run(&img, &cfg, 4, CommScheme::Async);
        analyze_run(&events).unwrap()
    };
    assert!(a.recv_wait_ns > baseline.recv_wait_ns);

    // Replaying the same seed reproduces the attribution exactly.
    let b = analyze_once();
    assert_eq!(a.recv_wait_ns, b.recv_wait_ns);
    assert_eq!(a.critical_path_ns, b.critical_path_ns);
    assert_eq!(a.straggler, b.straggler);
    assert_eq!(a.edges.len(), b.edges.len());
}
