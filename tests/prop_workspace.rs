//! Property tests of workspace reuse: a pooled pipeline streamed over a
//! random image sequence must be **bit-identical** — segmentation and
//! telemetry conformance view — to fresh one-shot runs, across all four
//! engines and both tie-break families.
//!
//! This is the safety net under the plan/workspace layer's core claim:
//! arena reuse (including re-planning on shape changes mid-stream) is
//! invisible to every observable output.

use cm_sim::CostModel;
use cmmd_sim::CommScheme;
use proptest::prelude::*;
use rg_core::telemetry::Recorder;
use rg_core::{
    segment, segment_par_with_telemetry, segment_with_telemetry, Config, HostPipeline,
    NullTelemetry, Pipeline, Segmentation, TieBreak,
};
use rg_datapar::DataParPipeline;
use rg_imaging::{synth, Image};
use rg_msgpass::{Decomposition, MsgPassPipeline};

// A short stream of random scenes with *varying shapes* — exercising both
// same-shape steady state and mid-stream re-planning.
prop_compose! {
    fn image_stream()(
        seeds in proptest::collection::vec(0u64..100_000, 2..4),
        w in 16usize..48,
        h in 16usize..48,
        grow in proptest::bool::ANY,
    ) -> Vec<Image<u8>> {
        seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                // Optionally vary the shape per image to force re-plans.
                let dw = if grow { 4 * i } else { 0 };
                synth::random_rects(w + dw, h, 6, s)
            })
            .collect()
    }
}

fn tie_of(random: bool, seed: u64) -> TieBreak {
    if random {
        TieBreak::Random { seed }
    } else {
        TieBreak::SmallestId
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Host engines: reused workspace vs fresh run, segmentation AND
    /// telemetry conformance view.
    #[test]
    fn host_pipeline_reuse_is_invisible(
        images in image_stream(),
        t in 0u32..120,
        random in proptest::bool::ANY,
        seed in 0u64..1_000,
    ) {
        let cfg = Config::with_threshold(t).tie_break(tie_of(random, seed));
        for parallel in [false, true] {
            let mut pipe: HostPipeline<u8> = HostPipeline::new(cfg, parallel);
            let mut out = Segmentation::default();
            for img in &images {
                let mut rec_fresh = Recorder::new();
                let fresh = if parallel {
                    segment_par_with_telemetry(img, &cfg, &mut rec_fresh)
                } else {
                    segment_with_telemetry(img, &cfg, &mut rec_fresh)
                };
                let mut rec_pipe = Recorder::new();
                pipe.run_image_into(img, &mut rec_pipe, &mut out);
                prop_assert_eq!(&fresh, &out, "parallel={}", parallel);
                prop_assert_eq!(
                    rec_fresh.report().conformance_view(),
                    rec_pipe.report().conformance_view(),
                    "parallel={}",
                    parallel
                );
            }
        }
    }
}

proptest! {
    // The simulated machines are slow; fewer, smaller cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Data-parallel engine behind the Pipeline trait: reused adapter vs
    /// the host reference, across the stream.
    #[test]
    fn datapar_pipeline_reuse_matches_host(
        seeds in proptest::collection::vec(0u64..100_000, 2..4),
        t in 0u32..120,
        random in proptest::bool::ANY,
    ) {
        let cfg = Config::with_threshold(t).tie_break(tie_of(random, 77));
        let mut pipe = DataParPipeline::new(cfg, CostModel::cm2_8k());
        for &s in &seeds {
            let img = synth::random_rects(32, 32, 5, s);
            let seg = pipe.run(&img, &mut NullTelemetry);
            prop_assert_eq!(seg, segment(&img, &cfg));
        }
    }

    /// Message-passing engine behind the Pipeline trait: reused adapter vs
    /// the host reference under the decomposition's square cap.
    #[test]
    fn msgpass_pipeline_reuse_matches_host(
        seeds in proptest::collection::vec(0u64..100_000, 2..3),
        t in 0u32..120,
        random in proptest::bool::ANY,
    ) {
        let nodes = 4;
        let cap = Decomposition::for_nodes(nodes, 32, 32).max_safe_square_log2();
        let cfg = Config::with_threshold(t)
            .tie_break(tie_of(random, 13))
            .max_square_log2(Some(cap));
        let mut pipe = MsgPassPipeline::new(cfg, nodes, CommScheme::Async);
        for &s in &seeds {
            let img = synth::random_rects(32, 32, 5, s);
            let seg = pipe.run(&img, &mut NullTelemetry);
            prop_assert_eq!(seg, segment(&img, &cfg));
        }
    }
}
