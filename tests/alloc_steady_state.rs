//! Steady-state zero-allocation assertion for the host pipelines.
//!
//! The plan/workspace layer promises that once a [`HostPipeline`] has been
//! warmed up on an image shape, running further same-shape images performs
//! **zero heap allocations** — every arena reuses its high-water-mark
//! capacity. This test wraps the global allocator in a counting shim and
//! asserts exactly that for both host engines (the "rayon" engine runs on
//! the workspace's sequential compat shim, so it shares the guarantee).
//!
//! One `#[test]` only: counting is process-global, and a single test keeps
//! other tests' allocations out of the measured window regardless of the
//! harness' thread scheduling.

use rg_core::{Config, HostPipeline, NullTelemetry, Segmentation, TieBreak};
use rg_imaging::synth;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts allocations (not frees): the steady-state claim is about new
/// heap traffic, so `alloc` / `realloc` are the interesting events.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// Allocator shims must forward verbatim; the counter is the only addition.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warm_host_pipelines_run_allocation_free() {
    // A scene busy enough to exercise split, CSR merge, compaction and the
    // DSU, with random tie-breaking (the paper's default policy).
    let images: Vec<_> = (0..4)
        .map(|s| synth::random_rects(128, 128, 10, s))
        .collect();
    let cfg = Config::with_threshold(10).tie_break(TieBreak::Random { seed: 9 });

    for (parallel, engine) in [(false, "seq"), (true, "rayon")] {
        let mut pipe: HostPipeline<u8> = HostPipeline::new(cfg, parallel);
        let mut out = Segmentation::default();

        // Warm-up pass: arenas grow to the stream's high-water mark.
        let mut expected = Vec::new();
        for img in &images {
            pipe.run_image_into(img, &mut NullTelemetry, &mut out);
            expected.push(out.clone());
        }

        // Steady-state pass: identical results, zero new allocations.
        for (img, want) in images.iter().zip(&expected) {
            let before = allocs();
            pipe.run_image_into(img, &mut NullTelemetry, &mut out);
            let delta = allocs() - before;
            assert_eq!(
                delta, 0,
                "{engine}: steady-state image made {delta} heap allocation(s)"
            );
            assert_eq!(&out, want, "{engine}: steady-state result drifted");
        }
    }
}
