//! Cross-engine equivalence: the sequential, rayon, data-parallel (CM-2 and
//! CM-5 cost models), and message-passing (LP and Async) engines must
//! produce the identical `Segmentation` for the same configuration.
//!
//! This is the strongest end-to-end property of the reproduction: the
//! paper's three codebases (CM Fortran on two machines, F77 + CMMD) were
//! meant to compute the same thing; ours provably do.

use cm_sim::CostModel;
use cmmd_sim::CommScheme;
use rg_core::{segment, segment_par, Config, Connectivity, Criterion, TieBreak};
use rg_datapar::segment_datapar;
use rg_imaging::synth;
use rg_msgpass::{segment_msgpass, Decomposition};

/// Runs every engine and asserts equality of the segmentations.
fn assert_all_engines_agree(img: &rg_imaging::GrayImage, config: &Config, nodes: usize) {
    // Clamp the cap as the message-passing decomposition requires.
    let d = Decomposition::for_nodes(nodes, img.width(), img.height());
    let cap = config
        .max_square_log2
        .map(|c| c.min(d.max_safe_square_log2()))
        .unwrap_or(d.max_safe_square_log2());
    let cfg = Config {
        max_square_log2: Some(cap),
        ..*config
    };

    let host = segment(img, &cfg);
    let par = segment_par(img, &cfg);
    assert_eq!(host, par, "rayon engine diverged");

    for model in [CostModel::cm2_8k(), CostModel::cm2_16k(), CostModel::cm5_dp_32()] {
        let dp = segment_datapar(img, &cfg, model);
        assert_eq!(host, dp.seg, "data-parallel engine diverged on {}", dp.platform);
    }
    for scheme in [CommScheme::LinearPermutation, CommScheme::Async] {
        let mp = segment_msgpass(img, &cfg, nodes, scheme);
        assert_eq!(host, mp.seg, "message-passing engine diverged ({scheme:?})");
    }
}

#[test]
fn engines_agree_on_paper_worked_example() {
    let img = synth::figure1_image();
    assert_all_engines_agree(
        &img,
        &Config::with_threshold(3).tie_break(TieBreak::SmallestId),
        4,
    );
}

#[test]
fn engines_agree_on_nested_rects() {
    let img = synth::nested_rects(64);
    assert_all_engines_agree(&img, &Config::with_threshold(10), 8);
}

#[test]
fn engines_agree_on_circles_with_random_ties() {
    let img = synth::circle_collection(64);
    assert_all_engines_agree(
        &img,
        &Config::with_threshold(10).tie_break(TieBreak::Random { seed: 123 }),
        16,
    );
}

#[test]
fn engines_agree_on_random_scenes() {
    for seed in 0..3u64 {
        let img = synth::random_rects(48, 32, 7, seed);
        for tie in [TieBreak::SmallestId, TieBreak::Random { seed: 9 }] {
            assert_all_engines_agree(&img, &Config::with_threshold(25).tie_break(tie), 4);
        }
    }
}

#[test]
fn engines_agree_with_eight_connectivity() {
    let img = synth::rect_collection(64);
    assert_all_engines_agree(
        &img,
        &Config::with_threshold(10).connectivity(Connectivity::Eight),
        4,
    );
}

#[test]
fn engines_agree_with_mean_criterion() {
    let img = synth::uniform_noise(48, 48, 90, 120, 4);
    assert_all_engines_agree(
        &img,
        &Config::with_threshold(6).criterion(Criterion::MeanDifference),
        4,
    );
}

#[test]
fn engines_agree_on_merge_only_baseline() {
    let img = synth::rect_collection(32);
    assert_all_engines_agree(
        &img,
        &Config::with_threshold(10).max_square_log2(Some(0)),
        4,
    );
}

#[test]
fn engines_agree_on_noise_that_fully_coalesces() {
    // Noise within the threshold: one region total.
    let img = synth::uniform_noise(64, 64, 100, 104, 8);
    assert_all_engines_agree(&img, &Config::with_threshold(8), 8);
}

/// Large-scale smoke test: 1024² scene through the host engines plus one
/// simulated platform each. Run with `cargo test -- --ignored --release`.
#[test]
#[ignore = "large; run explicitly with --ignored in release mode"]
fn engines_agree_at_1024() {
    let img = synth::circle_collection(1024);
    assert_all_engines_agree(&img, &Config::with_threshold(10), 32);
}
