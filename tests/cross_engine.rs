//! Cross-engine equivalence: the sequential, rayon, data-parallel (CM-2 and
//! CM-5 cost models), and message-passing (LP and Async) engines must
//! produce the identical `Segmentation` for the same configuration.
//!
//! This is the strongest end-to-end property of the reproduction: the
//! paper's three codebases (CM Fortran on two machines, F77 + CMMD) were
//! meant to compute the same thing; ours provably do.

use cm_sim::CostModel;
use cmmd_sim::CommScheme;
use rg_core::{
    segment, segment_par, segment_par_with_telemetry, segment_with_telemetry, Config, Connectivity,
    Criterion, Recorder, Stage, TelemetryReport, TieBreak,
};
use rg_datapar::{segment_datapar, segment_datapar_with_telemetry};
use rg_imaging::synth;
use rg_msgpass::{segment_msgpass, segment_msgpass_with_telemetry, Decomposition};

/// Runs every engine and asserts equality of the segmentations.
fn assert_all_engines_agree(img: &rg_imaging::GrayImage, config: &Config, nodes: usize) {
    // Clamp the cap as the message-passing decomposition requires.
    let d = Decomposition::for_nodes(nodes, img.width(), img.height());
    let cap = config
        .max_square_log2
        .map(|c| c.min(d.max_safe_square_log2()))
        .unwrap_or(d.max_safe_square_log2());
    let cfg = Config {
        max_square_log2: Some(cap),
        ..*config
    };

    let host = segment(img, &cfg);
    let par = segment_par(img, &cfg);
    assert_eq!(host, par, "rayon engine diverged");

    for model in [
        CostModel::cm2_8k(),
        CostModel::cm2_16k(),
        CostModel::cm5_dp_32(),
    ] {
        let dp = segment_datapar(img, &cfg, model);
        assert_eq!(
            host, dp.seg,
            "data-parallel engine diverged on {}",
            dp.platform
        );
    }
    for scheme in [CommScheme::LinearPermutation, CommScheme::Async] {
        let mp = segment_msgpass(img, &cfg, nodes, scheme);
        assert_eq!(host, mp.seg, "message-passing engine diverged ({scheme:?})");
    }
}

#[test]
fn engines_agree_on_paper_worked_example() {
    let img = synth::figure1_image();
    assert_all_engines_agree(
        &img,
        &Config::with_threshold(3).tie_break(TieBreak::SmallestId),
        4,
    );
}

#[test]
fn engines_agree_on_nested_rects() {
    let img = synth::nested_rects(64);
    assert_all_engines_agree(&img, &Config::with_threshold(10), 8);
}

#[test]
fn engines_agree_on_circles_with_random_ties() {
    let img = synth::circle_collection(64);
    assert_all_engines_agree(
        &img,
        &Config::with_threshold(10).tie_break(TieBreak::Random { seed: 123 }),
        16,
    );
}

#[test]
fn engines_agree_on_random_scenes() {
    for seed in 0..3u64 {
        let img = synth::random_rects(48, 32, 7, seed);
        for tie in [TieBreak::SmallestId, TieBreak::Random { seed: 9 }] {
            assert_all_engines_agree(&img, &Config::with_threshold(25).tie_break(tie), 4);
        }
    }
}

#[test]
fn engines_agree_with_eight_connectivity() {
    let img = synth::rect_collection(64);
    assert_all_engines_agree(
        &img,
        &Config::with_threshold(10).connectivity(Connectivity::Eight),
        4,
    );
}

#[test]
fn engines_agree_with_mean_criterion() {
    let img = synth::uniform_noise(48, 48, 90, 120, 4);
    assert_all_engines_agree(
        &img,
        &Config::with_threshold(6).criterion(Criterion::MeanDifference),
        4,
    );
}

#[test]
fn engines_agree_on_merge_only_baseline() {
    let img = synth::rect_collection(32);
    assert_all_engines_agree(
        &img,
        &Config::with_threshold(10).max_square_log2(Some(0)),
        4,
    );
}

#[test]
fn engines_agree_on_noise_that_fully_coalesces() {
    // Noise within the threshold: one region total.
    let img = synth::uniform_noise(64, 64, 100, 104, 8);
    assert_all_engines_agree(&img, &Config::with_threshold(8), 8);
}

/// Collects a telemetry report from every engine for the same image and
/// configuration (cap clamped to the message-passing decomposition so all
/// engines are bit-identical, as in [`assert_all_engines_agree`]).
fn collect_all_reports(
    img: &rg_imaging::GrayImage,
    config: &Config,
    nodes: usize,
) -> Vec<TelemetryReport> {
    let d = Decomposition::for_nodes(nodes, img.width(), img.height());
    let cap = config
        .max_square_log2
        .map(|c| c.min(d.max_safe_square_log2()))
        .unwrap_or(d.max_safe_square_log2());
    let cfg = Config {
        max_square_log2: Some(cap),
        ..*config
    };

    let mut reports = Vec::new();
    let mut rec = Recorder::new();
    segment_with_telemetry(img, &cfg, &mut rec);
    reports.push(rec.into_report());
    let mut rec = Recorder::new();
    segment_par_with_telemetry(img, &cfg, &mut rec);
    reports.push(rec.into_report());
    for model in [
        CostModel::cm2_8k(),
        CostModel::cm2_16k(),
        CostModel::cm5_dp_32(),
    ] {
        let mut rec = Recorder::new();
        segment_datapar_with_telemetry(img, &cfg, model, &mut rec);
        reports.push(rec.into_report());
    }
    for scheme in [CommScheme::LinearPermutation, CommScheme::Async] {
        let mut rec = Recorder::new();
        segment_msgpass_with_telemetry(img, &cfg, nodes, scheme, &mut rec);
        reports.push(rec.into_report());
    }
    reports
}

/// Telemetry conformance: every engine's recorded report must agree on the
/// observable segmentation history — per-iteration merge counts (including
/// which iterations used the stall-guard fallback), split iteration count,
/// square count, and final region count — for a fixed seed and config.
#[test]
fn telemetry_reports_agree_across_engines() {
    let img = synth::circle_collection(64);
    let cfg = Config::with_threshold(10).tie_break(TieBreak::Random { seed: 0x5EED });
    let reports = collect_all_reports(&img, &cfg, 16);
    assert_eq!(reports.len(), 7);
    let base = &reports[0];
    assert_eq!(base.engine, "seq");
    assert!(base.num_regions > 0);
    assert!(base.total_merge_iterations() > 0);
    // Compare the *observable* history through `conformance_view()`, which
    // normalises away the backend-internal per-iteration fields
    // (`active_edges`, `compacted`) that only the host engines report.
    let base_view = base.conformance_view();
    for r in &reports[1..] {
        assert_eq!(
            r.conformance_view(),
            base_view,
            "observable history diverged on {}",
            r.engine
        );
    }
}

/// Every engine emits the same stage sequence, and only the simulated
/// engines attach simulated seconds to their spans.
#[test]
fn telemetry_stage_structure_is_uniform() {
    let img = synth::nested_rects(64);
    let cfg = Config::with_threshold(10);
    let reports = collect_all_reports(&img, &cfg, 8);
    for r in &reports {
        let stages: Vec<Stage> = r.stages.iter().map(|s| s.stage).collect();
        assert_eq!(
            stages,
            [Stage::Split, Stage::Graph, Stage::Merge, Stage::Label],
            "{}",
            r.engine
        );
        let simulated = r.engine.starts_with("datapar:") || r.engine.starts_with("msgpass:");
        for span in &r.stages {
            if span.stage == Stage::Label {
                assert!(span.sim_seconds.is_none(), "{}", r.engine);
            } else {
                assert_eq!(span.sim_seconds.is_some(), simulated, "{}", r.engine);
            }
        }
        // Comm counters exist exactly for the message-passing engines.
        assert_eq!(
            r.comm.is_some(),
            r.engine.starts_with("msgpass:"),
            "{}",
            r.engine
        );
        if let Some(comm) = &r.comm {
            assert!(comm.rounds > 0);
            assert!(comm.messages > 0);
            assert!(comm.bytes > 0);
        }
    }
}

/// Large-scale smoke test: 1024² scene through the host engines plus one
/// simulated platform each. Run with `cargo test -- --ignored --release`.
#[test]
#[ignore = "large; run explicitly with --ignored in release mode"]
fn engines_agree_at_1024() {
    let img = synth::circle_collection(1024);
    assert_all_engines_agree(&img, &Config::with_threshold(10), 32);
}
