//! End-to-end trace schema acceptance: every engine, run with a streaming
//! JSONL sink, must produce a journal whose spans are balanced and
//! strictly nested, whose event kinds are all known, and whose Chrome
//! export passes the format validator — and the disabled
//! [`NullTelemetry`]-style path must stay event-free (zero-cost).

use cm_sim::CostModel;
use cmmd_sim::CommScheme;
use rg_core::{
    chrome_trace, chrome_trace_multi, parse_journal, replay, split_runs, validate_chrome_trace,
    validate_journal, Config, Event, EventKind, EventLog, SpanKind, Telemetry, TieBreak,
};
use rg_imaging::synth;

/// Runs one engine with an in-memory event log and returns the stream.
fn traced(engine: &str, img: &rg_imaging::GrayImage, cfg: &Config) -> Vec<Event> {
    let mut log = EventLog::in_memory();
    let tel: &mut dyn Telemetry = &mut log;
    match engine {
        "seq" => {
            rg_core::segment_with_telemetry(img, cfg, tel);
        }
        "par" => {
            rg_core::segment_par_with_telemetry(img, cfg, tel);
        }
        "cm2-8k" => {
            rg_datapar::segment_datapar_with_telemetry(img, cfg, CostModel::cm2_8k(), tel);
        }
        "mp-lp" => {
            rg_msgpass::segment_msgpass_with_telemetry(
                img,
                cfg,
                8,
                CommScheme::LinearPermutation,
                tel,
            );
        }
        "mp-async" => {
            rg_msgpass::segment_msgpass_with_telemetry(img, cfg, 8, CommScheme::Async, tel);
        }
        other => panic!("unknown engine {other}"),
    }
    log.into_events()
}

const ALL_ENGINES: &[&str] = &["seq", "par", "cm2-8k", "mp-lp", "mp-async"];

fn scene() -> (rg_imaging::GrayImage, Config) {
    (
        synth::circle_collection(64),
        Config::with_threshold(10).tie_break(TieBreak::Random { seed: 0x5EED }),
    )
}

/// The acceptance criterion: the JSONL journal of a traced run is
/// balanced, strictly nested, monotonic, and round-trips through text.
#[test]
fn every_engine_journal_is_balanced_and_strictly_nested() {
    let (img, cfg) = scene();
    for engine in ALL_ENGINES {
        let events = traced(engine, &img, &cfg);
        assert!(
            events.len() > 10,
            "{engine}: suspiciously small journal ({} events)",
            events.len()
        );
        validate_journal(&events).unwrap_or_else(|e| panic!("{engine}: invalid journal: {e:?}"));

        // Round-trip through JSONL text, as `--trace-out` would write it.
        let text: String = events.iter().map(Event::to_line).collect();
        let (parsed, stats) = parse_journal(&text);
        assert!(!stats.truncated, "{engine}");
        assert_eq!(parsed, events, "{engine}: JSONL round trip lost events");

        // A replayed journal reproduces the recorded report semantics.
        let report = replay(&events);
        assert!(report.num_regions > 0, "{engine}");
        assert!(
            !report.engine.is_empty(),
            "{engine}: replay lost the engine label"
        );
    }
}

/// Every event kind an engine can emit is in the known tag set — CI fails
/// here first when someone adds a kind without extending the schema.
#[test]
fn every_emitted_event_kind_is_known() {
    const KNOWN: &[&str] = &[
        "run_start",
        "b",
        "e",
        "stage",
        "split_done",
        "merge_iter",
        "merge_done",
        "comm",
        "counter",
        "hist",
        "run_end",
        "send",
        "recv",
        "coll",
    ];
    let (img, cfg) = scene();
    for engine in ALL_ENGINES {
        for ev in traced(engine, &img, &cfg) {
            assert!(
                KNOWN.contains(&ev.kind.tag()),
                "{engine}: unknown event kind {:?}",
                ev.kind.tag()
            );
        }
    }
}

/// The message-passing engines nest comm rounds inside merge iterations
/// and emit the comm counter tracks; the Chrome export validates.
#[test]
fn msgpass_journal_has_comm_rounds_and_counters() {
    let (img, cfg) = scene();
    let events = traced("mp-lp", &img, &cfg);
    let mut saw_comm_round_inside_iter = false;
    let mut depth_iter = 0i32;
    let mut counters = std::collections::BTreeSet::new();
    for ev in &events {
        match &ev.kind {
            EventKind::SpanBegin { span } => match span {
                SpanKind::MergeIteration(_) => depth_iter += 1,
                SpanKind::CommRound(_) => {
                    assert!(depth_iter > 0, "comm round outside a merge iteration");
                    saw_comm_round_inside_iter = true;
                }
                _ => {}
            },
            EventKind::SpanEnd { span } => {
                if matches!(span, SpanKind::MergeIteration(_)) {
                    depth_iter -= 1;
                }
            }
            EventKind::Counter { name, .. } => {
                counters.insert(name.clone());
            }
            _ => {}
        }
    }
    assert!(saw_comm_round_inside_iter);
    for want in ["comm.rounds", "comm.messages", "comm.bytes"] {
        assert!(counters.contains(want), "missing counter track {want}");
    }

    let doc = chrome_trace(&events);
    validate_chrome_trace(&doc).expect("chrome export of mp-lp journal");
}

/// Traced msgpass runs carry causal flow events, fully paired; the Chrome
/// export renders them as bound flow arrows and still validates. Host
/// engines' journals stay flow-free (backward compatibility).
#[test]
fn msgpass_journal_carries_paired_flows() {
    use rg_core::json::Json;
    let (img, cfg) = scene();
    let events = traced("mp-async", &img, &cfg);
    let fp = rg_core::flow_pairing(&events);
    assert!(fp.any(), "traced msgpass journal must carry flow events");
    assert!(fp.fully_paired(), "{fp:?}");
    let doc = chrome_trace(&events);
    validate_chrome_trace(&doc).unwrap();
    let arr = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let has_ph = |ph: &str| {
        arr.iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
    };
    assert!(has_ph("s"), "flow arrows missing their start half");
    assert!(has_ph("f"), "flow arrows missing their finish half");
    let host = traced("seq", &img, &cfg);
    assert!(!rg_core::flow_pairing(&host).any());
}

/// Chrome export of all engines at once: one process lane per engine.
#[test]
fn chrome_export_gives_each_engine_a_process_lane() {
    let (img, cfg) = scene();
    let streams: Vec<Vec<Event>> = ALL_ENGINES.iter().map(|e| traced(e, &img, &cfg)).collect();
    let mut concat: Vec<Event> = Vec::new();
    for s in &streams {
        concat.extend(s.iter().cloned());
    }
    assert_eq!(split_runs(&concat).len(), ALL_ENGINES.len());
    let refs: Vec<&[Event]> = streams.iter().map(Vec::as_slice).collect();
    let doc = chrome_trace_multi(&refs);
    validate_chrome_trace(&doc).unwrap();
    let arr = doc
        .get("traceEvents")
        .and_then(rg_core::json::Json::as_arr)
        .unwrap();
    let pids: std::collections::BTreeSet<u64> = arr
        .iter()
        .filter_map(|e| e.get("pid").and_then(rg_core::json::Json::as_u64))
        .collect();
    assert_eq!(pids.len(), ALL_ENGINES.len());
    // Histogram instants made it into the export for every engine.
    let hist_instants = arr
        .iter()
        .filter_map(|e| e.get("name").and_then(rg_core::json::Json::as_str))
        .filter(|n| n.starts_with("hist:region_size_px"))
        .count();
    assert_eq!(hist_instants, ALL_ENGINES.len());
}

/// A disabled sink must see *no* per-event traffic: the engines check
/// `enabled()` once and skip every span, record, counter, and histogram.
/// This is the zero-cost guarantee that keeps `NullTelemetry` free.
struct DisabledPanicSink;

impl Telemetry for DisabledPanicSink {
    fn enabled(&self) -> bool {
        false
    }
    fn span_begin(&mut self, kind: SpanKind) {
        panic!("span_begin({kind:?}) reached a disabled sink");
    }
    fn span_end(&mut self, kind: SpanKind) {
        panic!("span_end({kind:?}) reached a disabled sink");
    }
    fn merge_iteration(&mut self, rec: rg_core::MergeIterationRecord) {
        panic!("merge_iteration({rec:?}) reached a disabled sink");
    }
    fn counter(&mut self, name: &str, _value: f64) {
        panic!("counter({name}) reached a disabled sink");
    }
    fn histogram(&mut self, name: &str, _hist: &rg_core::Histogram) {
        panic!("histogram({name}) reached a disabled sink");
    }
    fn stage(&mut self, span: rg_core::StageSpan) {
        panic!("stage({:?}) reached a disabled sink", span.stage);
    }
    fn split_done(&mut self, _iterations: u32, _num_squares: usize) {
        panic!("split_done reached a disabled sink");
    }
    fn merge_done(&mut self, _num_regions: usize) {
        panic!("merge_done reached a disabled sink");
    }
    fn comm(&mut self, rec: rg_core::CommRecord) {
        panic!("comm({rec:?}) reached a disabled sink");
    }
    fn flow(&mut self, rec: rg_core::FlowRecord) {
        panic!("flow({rec:?}) reached a disabled sink");
    }
}

#[test]
fn disabled_sink_sees_no_events_on_any_engine() {
    let (img, cfg) = scene();
    let mut sink = DisabledPanicSink;
    rg_core::segment_with_telemetry(&img, &cfg, &mut sink);
    rg_core::segment_par_with_telemetry(&img, &cfg, &mut sink);
    rg_datapar::segment_datapar_with_telemetry(&img, &cfg, CostModel::cm2_8k(), &mut sink);
    rg_msgpass::segment_msgpass_with_telemetry(
        &img,
        &cfg,
        8,
        CommScheme::LinearPermutation,
        &mut sink,
    );
    // Reaching here without a panic proves no event call escaped the
    // enabled() gate.
}

/// The traced and untraced runs produce bit-identical segmentations.
#[test]
fn tracing_does_not_change_the_segmentation() {
    let (img, cfg) = scene();
    let plain = rg_core::segment(&img, &cfg);
    let mut log = EventLog::in_memory();
    let traced_seg = rg_core::segment_with_telemetry(&img, &cfg, &mut log);
    assert_eq!(plain, traced_seg);
}
