//! Shape checks on the reproduced evaluation: the paper's qualitative
//! findings must hold in the simulated tables — who wins, in what order,
//! and the iteration-count patterns.
//!
//! These run on a reduced image set (one 128² and one 256²) to stay fast;
//! `paper_tables` regenerates all six tables.

use cm_sim::CostModel;
use cmmd_sim::CommScheme;
use rg_bench::tables::paper_config;
use rg_datapar::segment_datapar;
use rg_imaging::synth::PaperImage;
use rg_msgpass::segment_msgpass;

fn rows(pi: PaperImage) -> (f64, f64, f64, f64, f64, f64, f64, f64, f64, f64) {
    let img = pi.generate();
    let cfg = paper_config(pi.size());
    let cm2_8k = segment_datapar(&img, &cfg, CostModel::cm2_8k());
    let cm2_16k = segment_datapar(&img, &cfg, CostModel::cm2_16k());
    let cm5_dp = segment_datapar(&img, &cfg, CostModel::cm5_dp_32());
    let lp = segment_msgpass(&img, &cfg, 32, CommScheme::LinearPermutation);
    let asy = segment_msgpass(&img, &cfg, 32, CommScheme::Async);
    (
        cm2_8k.split_seconds,
        cm2_8k.merge_seconds_as_reported(),
        cm2_16k.split_seconds,
        cm2_16k.merge_seconds_as_reported(),
        cm5_dp.split_seconds,
        cm5_dp.merge_seconds_as_reported(),
        lp.split_seconds,
        lp.merge_seconds_as_reported(),
        asy.split_seconds,
        asy.merge_seconds_as_reported(),
    )
}

fn assert_paper_shape(pi: PaperImage) {
    let (s8, m8, s16, m16, sdp, mdp, slp, mlp, sas, mas) = rows(pi);

    // Observation 1: 16K CM-2 beats 8K CM-2 (more processors help).
    assert!(s16 < s8, "{pi:?}: 16K split {s16} !< 8K split {s8}");
    assert!(m16 < m8, "{pi:?}: 16K merge {m16} !< 8K merge {m8}");

    // Observation 2: the CM Fortran version on the CM-2 runs faster than
    // on the CM-5 (housekeeping overhead).
    assert!(s8 < sdp, "{pi:?}: CM-2 split {s8} !< CM-5 DP split {sdp}");
    assert!(m8 < mdp, "{pi:?}: CM-2 merge {m8} !< CM-5 DP merge {mdp}");

    // Observation 3: message passing is significantly faster than data
    // parallel on the CM-5.
    assert!(slp < sdp && sas < sdp, "{pi:?}: MP split should beat DP");
    assert!(
        mlp < mdp && mas < mdp,
        "{pi:?}: MP merge ({mlp}, {mas}) should beat DP ({mdp})"
    );

    // Observation 4: asynchronous communication beats Linear Permutation.
    assert!(mas < mlp, "{pi:?}: Async merge {mas} !< LP merge {mlp}");

    // The message-passing split is the fastest split of all (the paper's
    // 0.022 s vs 0.2-0.36 s rows).
    assert!(sas < s16 && slp < s16, "{pi:?}: MP split should be fastest");
}

#[test]
fn image1_shape() {
    assert_paper_shape(PaperImage::Image1);
}

#[test]
fn image6_shape() {
    assert_paper_shape(PaperImage::Image6);
}

#[test]
fn split_iterations_match_paper_exactly() {
    // 4 iterations on 128² images, 5 on 256² — a structural property of
    // the 32-node decomposition's square cap.
    for pi in [PaperImage::Image1, PaperImage::Image4] {
        let img = pi.generate();
        let cfg = paper_config(pi.size());
        let out = segment_msgpass(&img, &cfg, 32, CommScheme::Async);
        let expect = if pi.size() == 128 { 4 } else { 5 };
        assert_eq!(out.seg.split_iterations, expect, "{pi:?}");
    }
}

#[test]
fn final_region_counts_match_paper_exactly() {
    for pi in PaperImage::ALL {
        let img = pi.generate();
        let cfg = paper_config(pi.size());
        let out = segment_msgpass(&img, &cfg, 32, CommScheme::Async);
        assert_eq!(
            out.seg.num_regions,
            pi.expected_final_regions(),
            "{}",
            pi.description()
        );
    }
}

#[test]
fn split_square_counts_in_paper_range() {
    // Our rasters are re-drawn, so square counts match in magnitude, not
    // exactly: require within a factor of 2.5 of the paper's counts.
    for pi in PaperImage::ALL {
        let img = pi.generate();
        let cfg = paper_config(pi.size());
        let out = segment_msgpass(&img, &cfg, 32, CommScheme::Async);
        let ours = out.seg.num_squares as f64;
        let paper = pi.paper_split_squares() as f64;
        let ratio = (ours / paper).max(paper / ours);
        assert!(
            ratio < 2.5,
            "{pi:?}: {} squares vs paper {} (ratio {ratio:.2})",
            out.seg.num_squares,
            pi.paper_split_squares()
        );
    }
}
